#include "core/async_algorithms.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>

#include "support/thread_annotations.hpp"

#include "core/easgd_rules.hpp"
#include "core/evaluator.hpp"
#include "data/sampler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace ds {
namespace {

bool is_easgd(AsyncMethod m) {
  return m == AsyncMethod::kAsyncEasgd || m == AsyncMethod::kAsyncMomentumEasgd ||
         m == AsyncMethod::kHogwildEasgd;
}

bool is_lock_free(AsyncMethod m) {
  return m == AsyncMethod::kHogwildSgd || m == AsyncMethod::kHogwildEasgd;
}

bool has_momentum(AsyncMethod m) {
  return m == AsyncMethod::kAsyncMomentumSgd ||
         m == AsyncMethod::kAsyncMomentumEasgd;
}

/// A center-weights snapshot pending evaluation after the threads join.
struct Snapshot {
  std::size_t iteration = 0;
  double vtime = 0.0;
  std::vector<float> weights;
};

struct MasterState {
  // Deliberately unannotated: the Hogwild variants read and update the
  // center with NO lock (the algorithm's defining property), while the
  // locked variants guard it with `mutex`. A GUARDED_BY here would force
  // no-analysis escapes onto the Hogwild path, hiding real findings.
  std::vector<float> center;
  Mutex mutex;  // FCFS lock — NOT taken by Hogwild variants
  std::vector<float> momentum DS_GUARDED_BY(mutex);  // Async MSGD only
  std::atomic<std::size_t> ticket{0};

  Mutex clock_mutex;
  double clock DS_GUARDED_BY(clock_mutex) = 0.0;  // serialised-master vclock

  Mutex trace_mutex;
  std::vector<Snapshot> snapshots DS_GUARDED_BY(trace_mutex);

  Mutex ledger_mutex;
  CostLedger ledger DS_GUARDED_BY(ledger_mutex);

  std::atomic<std::size_t> crashed{0};    // workers lost to the FaultPlan
  std::atomic<std::size_t> completed{0};  // interactions actually executed
};

}  // namespace

const char* async_method_name(AsyncMethod method) {
  switch (method) {
    case AsyncMethod::kAsyncSgd: return "Async SGD";
    case AsyncMethod::kAsyncMomentumSgd: return "Async MSGD";
    case AsyncMethod::kAsyncEasgd: return "Async EASGD";
    case AsyncMethod::kAsyncMomentumEasgd: return "Async MEASGD";
    case AsyncMethod::kHogwildSgd: return "Hogwild SGD";
    case AsyncMethod::kHogwildEasgd: return "Hogwild EASGD";
  }
  return "?";
}

RunResult run_async(const AlgoContext& ctx, const GpuSystem& hw,
                    AsyncMethod method) {
  return run_async(ctx, hw, method, FaultPlan::none());
}

RunResult run_async(const AlgoContext& ctx, const GpuSystem& hw,
                    AsyncMethod method, const FaultPlan& faults) {
  const TrainConfig& cfg = ctx.config;
  DS_CHECK(cfg.workers > 0, "need at least one worker");
  const bool faults_on = faults.active();

  // Master initialisation: one replica defines W̄₀ for everybody.
  const std::unique_ptr<Network> init_net = ctx.factory();
  MasterState master;
  {
    const auto params = init_net->arena().full_params();
    master.center.assign(params.begin(), params.end());
    if (has_momentum(method) && !is_easgd(method)) {
      // Workers don't exist yet, but momentum is guarded: take the lock.
      const MutexLock lock(master.mutex);
      master.momentum.assign(params.size(), 0.0f);
    }
  }

  const bool easgd = is_easgd(method);
  const bool lock_free = is_lock_free(method);
  const bool momentum = has_momentum(method);
  // Momentum multiplies the asymptotic step by 1/(1−µ); normalise so every
  // method takes comparable effective steps under the shared hyperparameters
  // (§2.4 holds the base η fixed across methods).
  const float momentum_factor = momentum ? 1.0f - cfg.momentum : 1.0f;

  // Per-interaction costs (same for every method — §2.4's same-hardware
  // discipline; the methods differ only in schedule and update rule).
  const double data_s = hw.data_copy_seconds(cfg.batch_size);
  const double fb_s = hw.fwd_bwd_seconds(cfg.batch_size);
  const double hop = hw.host_param_hop_seconds(MessageLayout::kPacked);
  const double gup_s = hw.gpu_update_seconds();
  const double cup_s = hw.cpu_update_seconds();

  auto worker_fn = [&](std::size_t wid) {
    // Each simulated device gets its own rank: its ledger spans land on
    // their own virtual timeline in the exported trace.
    const obs::RankScope obs_rank(static_cast<std::int64_t>(wid));
    DS_TRACE_SPAN("algo", "async_worker");
    const std::unique_ptr<Network> net = ctx.factory();
    {
      // All workers start from W̄₀. Another worker may already be inside a
      // center update by the time this thread launches, so the locked
      // variants must take the FCFS lock even for the initial read (the
      // Hogwild variants read racily by design, as everywhere else).
      if (lock_free) {
        copy(master.center, net->arena().full_params());
      } else {
        const MutexLock lock(master.mutex);
        copy(master.center, net->arena().full_params());
      }
    }
    BatchSampler sampler(*ctx.train, cfg.batch_size, cfg.seed * 104729 + wid);
    Tensor batch;
    std::vector<std::int32_t> labels;
    std::vector<float> center_copy(master.center.size());
    std::vector<float> worker_momentum;
    if (momentum && easgd) worker_momentum.assign(master.center.size(), 0.0f);
    CostLedger local_ledger;
    double wclock = 0.0;
    const double slow = faults.straggler_for(wid);
    const double death = faults.crash_time(wid);

    for (;;) {
      if (faults_on && wclock >= death) {
        // Scheduled crash, detected at the iteration boundary: this worker
        // stops touching the master and the FCFS ticket queue hands its
        // remaining interaction share to the survivors.
        master.crashed.fetch_add(1);
        break;
      }
      const std::size_t my = master.ticket.fetch_add(1);
      if (my >= cfg.iterations) break;
      const std::size_t iter = my + 1;
      const float lr = cfg.lr_at(iter) * momentum_factor;

      sampler.next(batch, labels);

      if (easgd) {
        // Elastic worker: the gradient is taken at the LOCAL weights, so
        // the W̄ pull overlaps with compute (prefetch); the elastic pull is
        // applied after.
        if (lock_free) {
          // Hogwild: racy read of the center — by design.
          std::memcpy(center_copy.data(), master.center.data(),
                      center_copy.size() * sizeof(float));
        } else {
          const MutexLock lock(master.mutex);
          std::memcpy(center_copy.data(), master.center.data(),
                      center_copy.size() * sizeof(float));
        }
        net->zero_grads();
        net->forward_backward(batch, labels);
        wclock += (data_s + std::max(fb_s, hop)) * slow;

        if (momentum) {
          measgd_worker_step(net->arena().full_params(), worker_momentum,
                             net->arena().full_grads(), center_copy, lr,
                             cfg.momentum, cfg.rho);
        } else {
          easgd_worker_step(net->arena().full_params(),
                            net->arena().full_grads(), center_copy, lr,
                            cfg.rho);
        }
        wclock += gup_s * slow;
        local_ledger.charge_traced(Phase::kGpuUpdate, gup_s, wclock);

        // Push W_i; master applies Eq. (2).
        if (lock_free) {
          easgd_center_step(master.center, net->arena().full_params(), lr,
                            cfg.rho);
          wclock += (hop + cup_s) * slow;
        } else {
          const MutexLock lock(master.mutex);
          easgd_center_step(master.center, net->arena().full_params(), lr,
                            cfg.rho);
          const MutexLock clock_lock(master.clock_mutex);
          master.clock = std::max(master.clock, wclock) + hop + cup_s;
          wclock = master.clock;
        }
      } else {
        // Parameter-server SGD: pull W̄, compute the gradient AT W̄, push
        // the gradient. The pull is a strict dependency — no overlap.
        if (lock_free) {
          std::memcpy(net->arena().full_params().data(), master.center.data(),
                      center_copy.size() * sizeof(float));
        } else {
          const MutexLock lock(master.mutex);
          std::memcpy(net->arena().full_params().data(), master.center.data(),
                      center_copy.size() * sizeof(float));
        }
        net->zero_grads();
        net->forward_backward(batch, labels);
        wclock += (data_s + hop + fb_s) * slow;

        if (lock_free) {
          sgd_step(master.center, net->arena().full_grads(), lr);
          wclock += (hop + cup_s) * slow;
        } else {
          const MutexLock lock(master.mutex);
          if (momentum) {
            momentum_step(master.center, master.momentum,
                          net->arena().full_grads(), lr, cfg.momentum);
          } else {
            sgd_step(master.center, net->arena().full_grads(), lr);
          }
          const MutexLock clock_lock(master.clock_mutex);
          master.clock = std::max(master.clock, wclock) + hop + cup_s;
          wclock = master.clock;
        }
      }

      // Span chain tiled backwards from the interaction's end time. The
      // charged amounts are the unscaled §2.4 costs, so the tiling is an
      // attribution of the interaction, not a replay of the wclock
      // arithmetic — the rollup still sums to the ledger exactly.
      double tc = wclock - (data_s + 2.0 * hop + fb_s + cup_s);
      tc += data_s;
      local_ledger.charge_traced(Phase::kCpuGpuDataComm, data_s, tc);
      tc += 2.0 * hop;
      local_ledger.charge_traced(Phase::kCpuGpuParamComm, 2.0 * hop, tc);
      tc += fb_s;
      local_ledger.charge_traced(Phase::kForwardBackward, fb_s, tc);
      tc += cup_s;
      local_ledger.charge_traced(Phase::kCpuUpdate, cup_s, tc);

      if (iter % cfg.eval_every == 0 || iter == cfg.iterations) {
        Snapshot snap;
        snap.iteration = iter;
        snap.vtime = wclock;
        snap.weights.resize(master.center.size());
        if (lock_free) {
          std::memcpy(snap.weights.data(), master.center.data(),
                      snap.weights.size() * sizeof(float));
        } else {
          const MutexLock lock(master.mutex);
          std::memcpy(snap.weights.data(), master.center.data(),
                      snap.weights.size() * sizeof(float));
        }
        const MutexLock lock(master.trace_mutex);
        master.snapshots.push_back(std::move(snap));
      }
      master.completed.fetch_add(1, std::memory_order_relaxed);
    }

    const MutexLock lock(master.ledger_mutex);
    master.ledger += local_ledger;
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.workers);
  for (std::size_t i = 0; i < cfg.workers; ++i) {
    threads.emplace_back(worker_fn, i);
  }
  for (auto& t : threads) t.join();

  // Evaluate the snapshots after the fact (evaluation is not part of the
  // measured training time). The workers are joined, but the capabilities
  // still travel with the guarded members — move them out under their locks.
  std::vector<Snapshot> snapshots;
  {
    const MutexLock lock(master.trace_mutex);
    snapshots = std::move(master.snapshots);
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return a.iteration < b.iteration;
            });
  RunResult res;
  res.method = async_method_name(method);
  {
    const MutexLock lock(master.ledger_mutex);
    res.ledger = master.ledger;
  }
  Evaluator eval(ctx.factory, *ctx.test, cfg.eval_samples);
  double vtime_monotone = 0.0;
  for (const Snapshot& snap : snapshots) {
    TracePoint p = eval.evaluate_packed(snap.weights);
    p.iteration = snap.iteration;
    vtime_monotone = std::max(vtime_monotone, snap.vtime);
    p.vtime = vtime_monotone;
    res.trace.push_back(p);
  }
  res.total_seconds = vtime_monotone;
  res.iterations = master.completed.load();
  res.workers = cfg.workers;
  res.workers_survived = cfg.workers - master.crashed.load();
  if (res.workers_survived < res.workers) {
    // Crashes only abort the run when they leave the interaction budget
    // unfinished (i.e. every worker died); otherwise the FCFS ticket queue
    // let the survivors absorb the lost worker's share.
    res.aborted = res.iterations < cfg.iterations;
    std::ostringstream os;
    os << (res.workers - res.workers_survived) << " worker(s) crashed; "
       << (res.aborted ? "interaction budget cut to " : "survivors finished ")
       << res.iterations << '/' << cfg.iterations << " interactions";
    res.abort_reason = os.str();
  }
  res.final_params.assign(master.center.begin(), master.center.end());
  if (!res.trace.empty()) {
    res.final_accuracy = res.trace.back().accuracy;
    res.final_loss = res.trace.back().loss;
  }
  // Packed W̄ pull + push per interaction across the host link.
  res.messages_sent = 2 * res.iterations;
  res.bytes_sent = static_cast<std::uint64_t>(
      2.0 * hw.model().weight_bytes * static_cast<double>(res.iterations));
  obs::metrics()
      .counter(obs::names::kCommMessagesModeled)
      .add(res.messages_sent);
  obs::metrics().counter(obs::names::kCommBytesModeled).add(res.bytes_sent);
  return res;
}

}  // namespace ds
