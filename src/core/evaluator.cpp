#include "core/evaluator.hpp"

#include <algorithm>

#include "data/sampler.hpp"
#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace ds {

namespace {
constexpr std::size_t kEvalChunk = 64;
}

Evaluator::Evaluator(const NetworkFactory& factory, const Dataset& test,
                     std::size_t eval_samples)
    : net_(factory()), test_(test) {
  DS_CHECK(net_ != nullptr && net_->finalized(), "factory must finalize");
  const std::size_t n = std::min(eval_samples, test_.size());
  DS_CHECK(n > 0, "evaluator needs test samples");
  indices_.resize(n);
  for (std::size_t i = 0; i < n; ++i) indices_[i] = i;
}

TracePoint Evaluator::run_eval() {
  TracePoint point;
  double loss_sum = 0.0;
  std::size_t correct = 0;
  std::size_t done = 0;
  std::vector<std::size_t> chunk;
  while (done < indices_.size()) {
    const std::size_t take = std::min(kEvalChunk, indices_.size() - done);
    chunk.assign(indices_.begin() + static_cast<long>(done),
                 indices_.begin() + static_cast<long>(done + take));
    gather_batch(test_, chunk, batch_, labels_);
    const LossResult r = net_->evaluate_batch(batch_, labels_);
    loss_sum += r.loss * static_cast<double>(take);
    correct += r.correct;
    done += take;
  }
  point.loss = loss_sum / static_cast<double>(indices_.size());
  point.accuracy =
      static_cast<double>(correct) / static_cast<double>(indices_.size());
  return point;
}

TracePoint Evaluator::evaluate(const ParamArena& arena) {
  net_->arena().copy_params_from(arena);
  return run_eval();
}

TracePoint Evaluator::evaluate_packed(std::span<const float> weights) {
  copy(weights, net_->arena().full_params());
  return run_eval();
}

}  // namespace ds
