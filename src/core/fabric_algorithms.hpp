// Algorithm 4 as a true SPMD message-passing program.
//
// run_cluster_sync_easgd (knl_algorithms.hpp) executes the schedule
// single-threaded with closed-form collective costs — ideal for fast,
// deterministic experiments. This variant runs the SAME algorithm the way
// an MPI code would: one thread per node, every transfer an actual message
// through the Fabric's binomial-tree collectives, and time read off the
// fabric's causally-tracked virtual clocks instead of a formula. It is the
// substrate-level proof that the Θ(log P) schedule the cost model assumes
// is the schedule the implementation really executes.
//
// Despite running on threads, the result is bit-deterministic: blocking
// matched receives make every reduction order a pure function of the tree
// shape.
#pragma once

#include "comm/cost_model.hpp"
#include "comm/fault.hpp"
#include "core/context.hpp"
#include "core/run_result.hpp"
#include "nn/models.hpp"

namespace ds {

struct FabricClusterConfig {
  LinkModel network = cray_aries();
  double node_flops = 6.0e10;            // compute rate per node
  PaperModelInfo model = paper_lenet();  // paper-scale timing metadata
  double update_flops_per_param = 4.0;
  // Faults threaded into the fabric (drops, jitter, stragglers, crashes).
  // Graceful-degradation contract: the SPMD sync run aborts the failed
  // round cleanly and reports partial progress; the parameter-server run
  // keeps serving the surviving workers. An inactive plan is free.
  FaultPlan faults;
};

/// Sync EASGD over the fabric: ctx.config.workers ranks, center on rank 0.
RunResult run_fabric_easgd(const AlgoContext& ctx,
                           const FabricClusterConfig& cluster);

/// Async EASGD as a real parameter server over the fabric (paper Figure 5 +
/// §5.1's first redesign): rank 0 is a dedicated server processing
/// first-come-first-served weight pushes; ranks 1..workers are workers.
/// ctx.config.workers counts the WORKERS (the fabric gets workers+1 ranks);
/// ctx.config.iterations is the total interaction budget.
///
/// The fabric's causal clocks make the server a real queueing system: when
/// pushes arrive faster than the server can turn them around, worker
/// virtual time stalls on the reply — the master-bottleneck effect that
/// motivates Hogwild EASGD (§5.1).
RunResult run_fabric_async_easgd(const AlgoContext& ctx,
                                 const FabricClusterConfig& cluster);

/// Bucketed backprop-overlapped EASGD over the fabric (DESIGN.md §10):
/// rank 0 is a dedicated center; ranks 1..workers run real backprop and
/// ship each parameter bucket IN FLIGHT (Fabric::send_overlapped) the
/// moment backward retires its last layer, so the transfers ride under the
/// remaining backward work. ctx.config.bucketing must be enabled; the mode
/// picks the completion discipline:
///
///   * kDeterministic — the center serves bucket b from workers 1..W in
///     fixed order (matched receives) and replies the pre-step center
///     slice in the same order. Bitwise-reproducible, and bitwise-INVARIANT
///     across bucket sizes: a one-giant-bucket run is the full-pass
///     exchange, and any ragged bucketing produces the identical result
///     (elementwise update rules over fixed-order sums).
///   * kWaitFree — the center serves pushes by recv_any as they land and
///     replies immediately; workers poll completed buckets mid-backward
///     (Fabric::try_recv) and apply Eq. (1) slices early. Same values per
///     exchange, schedule-dependent float-sum order.
///
/// ctx.config.workers counts the WORKERS (the fabric gets workers+1
/// ranks); ctx.config.iterations counts center rounds.
RunResult run_fabric_bucketed_easgd(const AlgoContext& ctx,
                                    const FabricClusterConfig& cluster);

/// Round-robin EASGD over the fabric (paper Algorithm 1): rank 0 is the
/// master sweeping workers 1..W in a FIXED order every round — matched
/// receives only, no wildcard — applying Eq. (2) per visit and returning
/// the fresh center. ctx.config.workers counts the WORKERS (the fabric
/// gets workers+1 ranks); ctx.config.iterations counts master sweeps.
///
/// The deterministic sweep is the protocol contrast to the parameter
/// server above: same master-bottleneck math, but the message schedule is
/// a pure function of (workers, iterations), which is what makes it the
/// reference protocol for check::explore's determinism assertions.
RunResult run_fabric_round_robin_easgd(const AlgoContext& ctx,
                                       const FabricClusterConfig& cluster);

}  // namespace ds
