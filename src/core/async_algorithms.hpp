// The asynchronous family (§5.1): parameter-server methods where each
// worker runs in its own thread against a shared-memory master.
//
//   Async SGD      — classic parameter server (Dean et al.), FCFS lock.
//   Async MSGD     — + momentum on the master, Equations (3)(4).
//   Async EASGD    — FCFS parameter-server schedule with the elastic rules,
//                    Equations (1)(2) (the paper's first redesign).
//   Async MEASGD   — + worker momentum, Equations (5)(6).
//   Hogwild SGD    — Async SGD without the master lock (Recht et al.).
//   Hogwild EASGD  — Async EASGD without the master lock (the paper's
//                    second contribution: lock-free elastic averaging).
//
// Workers are real OS threads and the Hogwild variants really do update the
// shared center weights without synchronisation — data races on floats are
// the algorithm, exactly as in the Hogwild paper. Consequently these runs
// are *not* deterministic (the paper makes the same point about
// asynchronous methods, §8).
//
// Virtual time: each worker advances its own clock by compute + transfer
// costs; a locked master serialises interactions (its clock is the maximum
// of its own and the worker's, plus service time), which is precisely why
// Hogwild EASGD overtakes Async EASGD once the master saturates.
#pragma once

#include "comm/fault.hpp"
#include "core/context.hpp"
#include "core/run_result.hpp"
#include "simhw/gpu_system.hpp"

namespace ds {

enum class AsyncMethod {
  kAsyncSgd,
  kAsyncMomentumSgd,
  kAsyncEasgd,
  kAsyncMomentumEasgd,
  kHogwildSgd,
  kHogwildEasgd,
};

const char* async_method_name(AsyncMethod method);

RunResult run_async(const AlgoContext& ctx, const GpuSystem& hw,
                    AsyncMethod method);

/// Fault-aware variant. The async family degrades gracefully: a worker
/// whose virtual clock crosses its scheduled crash time stops at the next
/// iteration boundary and the survivors absorb the remaining interaction
/// budget (the FCFS ticket queue redistributes work automatically);
/// straggler factors slow the affected worker's virtual clock. The result
/// records the surviving worker count and the interactions actually
/// completed; if the crashes leave the budget unfinished (every worker
/// died), RunResult::aborted is set. An inactive plan reproduces
/// run_async() exactly.
RunResult run_async(const AlgoContext& ctx, const GpuSystem& hw,
                    AsyncMethod method, const FaultPlan& faults);

}  // namespace ds
