// Result of one distributed-training run: the accuracy-vs-virtual-time
// trace (what Figures 6/8/10/13 plot) plus the per-phase cost ledger (what
// Table 3 tabulates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/ledger.hpp"

namespace ds {

struct TracePoint {
  std::size_t iteration = 0;  // master iterations / interactions so far
  double vtime = 0.0;         // virtual seconds elapsed
  double loss = 0.0;          // test cross-entropy of the center weights
  double accuracy = 0.0;      // test accuracy of the center weights
};

struct RunResult {
  std::string method;
  std::vector<TracePoint> trace;
  CostLedger ledger;
  double total_seconds = 0.0;    // virtual time at the end of the run
  std::size_t iterations = 0;    // iterations/interactions actually completed
  double final_accuracy = 0.0;
  double final_loss = 0.0;

  // --- wire accounting (obs metrics registry) ------------------------
  // Fabric runs report what actually crossed the simulated wire (registry
  // deltas over the run); modeled GpuSystem runs report the message/byte
  // counts implied by their collective schedule. Bytes include retransmits.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;

  // --- robustness / fault-injection accounting -----------------------
  std::size_t workers = 0;           // workers/ranks the run started with
  std::size_t workers_survived = 0;  // still alive when the run ended
  bool aborted = false;              // sync-family run stopped on a failure
  std::string abort_reason;          // human-readable failure description

  /// Center weights at the end of the run, packed in arena order. Filled by
  /// the deterministic (sync/fabric) runners and by the locked async
  /// runners; empty when the method has no well-defined final center.
  std::vector<float> final_params;

  /// True when the run lost workers or aborted early.
  bool degraded() const;

  /// One-line status: "4/4 workers, 300 iters" or the abort story.
  std::string fault_summary() const;

  /// First virtual time at which the trace reaches `target` accuracy;
  /// nullopt if it never does.
  std::optional<double> time_to_accuracy(double target) const;

  /// Best accuracy anywhere in the trace.
  double best_accuracy() const;

  /// CSV rows: method,iteration,vtime,loss,accuracy.
  std::string trace_csv() const;
};

}  // namespace ds
