#include "core/model_parallel.hpp"

#include <cstring>

#include "support/error.hpp"
#include "tensor/gemm.hpp"

namespace ds {
namespace {
constexpr int kGatherTag = 701;
}

ModelParallelFC::ModelParallelFC(Fabric& fabric, std::size_t rank,
                                 std::size_t in_features,
                                 std::size_t out_features)
    : fabric_(fabric), rank_(rank), in_(in_features), out_(out_features) {
  const std::size_t ranks = fabric_.ranks();
  DS_CHECK(rank_ < ranks, "rank out of range");
  DS_CHECK(out_ >= ranks, "fewer output rows than ranks");
  const std::size_t base = out_ / ranks;
  const std::size_t extra = out_ % ranks;
  rows_begin_ = rank_ * base + std::min(rank_, extra);
  rows_end_ = rows_begin_ + base + (rank_ < extra ? 1 : 0);
  const std::size_t local = rows_end_ - rows_begin_;
  params_.assign(local * in_ + local, 0.0f);
  grads_.assign(params_.size(), 0.0f);
}

void ModelParallelFC::load_full(std::span<const float> full_weights,
                                std::size_t in_features,
                                std::size_t out_features) {
  DS_CHECK(in_features == in_ && out_features == out_,
           "load_full dimension mismatch");
  DS_CHECK(full_weights.size() == out_ * in_ + out_,
           "full weight span has wrong size");
  const std::size_t local = rows_end_ - rows_begin_;
  // Weight rows.
  std::memcpy(params_.data(), full_weights.data() + rows_begin_ * in_,
              local * in_ * sizeof(float));
  // Biases.
  std::memcpy(params_.data() + local * in_,
              full_weights.data() + out_ * in_ + rows_begin_,
              local * sizeof(float));
}

void ModelParallelFC::forward(const Tensor& x, Tensor& y) {
  const std::size_t ranks = fabric_.ranks();
  const std::size_t local = rows_end_ - rows_begin_;

  // Broadcast rank 0's input to every shard (Figure 4.2: all partitions
  // see the full activations of the previous layer).
  std::vector<float> xbuf;
  std::size_t batch = 0;
  if (rank_ == 0) {
    DS_CHECK(x.rank() == 2 && x.dim(1) == in_, "x must be N×in on rank 0");
    batch = x.dim(0);
    xbuf.assign(x.data(), x.data() + x.numel());
    xbuf.push_back(static_cast<float>(batch));  // ship the batch size too
  }
  fabric_.tree_broadcast(rank_, 0, xbuf);
  batch = static_cast<std::size_t>(xbuf.back());
  xbuf.pop_back();

  // Local slice: y_local = X · W_localᵀ + b_local.
  std::vector<float> y_local(batch * local);
  const float* weights = params_.data();
  const float* bias = params_.data() + local * in_;
  gemm(Transpose::kNo, Transpose::kYes, batch, local, in_, 1.0f, xbuf.data(),
       weights, 0.0f, y_local.data());
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t j = 0; j < local; ++j) y_local[n * local + j] += bias[j];
  }

  // Gather the slices on rank 0, assemble, broadcast the full output.
  std::vector<float> full;
  if (rank_ == 0) {
    full.assign(batch * out_, 0.0f);
    // Own slice.
    for (std::size_t n = 0; n < batch; ++n) {
      std::memcpy(full.data() + n * out_ + rows_begin_,
                  y_local.data() + n * local, local * sizeof(float));
    }
    for (std::size_t src = 1; src < ranks; ++src) {
      const std::vector<float> slice = fabric_.recv(0, src, kGatherTag);
      // Reconstruct the source's row range.
      const std::size_t base = out_ / ranks;
      const std::size_t extra = out_ % ranks;
      const std::size_t begin = src * base + std::min(src, extra);
      const std::size_t count = base + (src < extra ? 1 : 0);
      DS_CHECK(slice.size() == batch * count, "gather slice size mismatch");
      for (std::size_t n = 0; n < batch; ++n) {
        std::memcpy(full.data() + n * out_ + begin,
                    slice.data() + n * count, count * sizeof(float));
      }
    }
  } else {
    fabric_.send(rank_, 0, kGatherTag, std::move(y_local));
  }
  fabric_.tree_broadcast(rank_, 0, full);

  if (y.shape() != Shape{batch, out_}) y = Tensor({batch, out_});
  std::memcpy(y.data(), full.data(), full.size() * sizeof(float));
}

void ModelParallelFC::backward(const Tensor& x, const Tensor& dy,
                               Tensor& dx) {
  const std::size_t local = rows_end_ - rows_begin_;
  DS_CHECK(dy.rank() == 2 && dy.dim(1) == out_, "dy must be N×out");
  const std::size_t batch = dy.dim(0);
  DS_CHECK(x.rank() == 2 && x.dim(0) == batch && x.dim(1) == in_,
           "x must be N×in (every rank passes the broadcast input)");

  // Slice this rank's output-gradient rows.
  std::vector<float> dy_local(batch * local);
  for (std::size_t n = 0; n < batch; ++n) {
    std::memcpy(dy_local.data() + n * local,
                dy.data() + n * out_ + rows_begin_, local * sizeof(float));
  }

  // Parameter gradients (local only — this is the model-parallel win:
  // weights never cross the network).
  float* dweights = grads_.data();
  float* dbias = grads_.data() + local * in_;
  gemm(Transpose::kYes, Transpose::kNo, local, in_, batch, 1.0f,
       dy_local.data(), x.data(), 1.0f, dweights);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t j = 0; j < local; ++j) {
      dbias[j] += dy_local[n * local + j];
    }
  }

  // Partial input gradient, summed across ranks.
  std::vector<float> dx_partial(batch * in_, 0.0f);
  gemm(Transpose::kNo, Transpose::kNo, batch, in_, local, 1.0f,
       dy_local.data(), params_.data(), 0.0f, dx_partial.data());
  fabric_.tree_allreduce(rank_, 0, dx_partial);

  if (dx.shape() != Shape{batch, in_}) dx = Tensor({batch, in_});
  std::memcpy(dx.data(), dx_partial.data(),
              dx_partial.size() * sizeof(float));
}

double ModelParallelFC::comm_bytes_per_iteration(std::size_t batch,
                                                 std::size_t in_features,
                                                 std::size_t out_features,
                                                 std::size_t ranks) {
  if (ranks <= 1) return 0.0;
  const double p1 = static_cast<double>(ranks - 1);
  const double b = static_cast<double>(batch);
  const double fin = static_cast<double>(in_features);
  const double fout = static_cast<double>(out_features);
  // forward: broadcast x (p-1 messages) + gather y slices (~1 full y) +
  // broadcast y (p-1); backward: allreduce dx (2(p-1)).
  const double floats =
      p1 * b * fin + b * fout + p1 * b * fout + 2.0 * p1 * b * fin;
  return floats * sizeof(float);
}

double ModelParallelFC::data_parallel_comm_bytes(std::size_t in_features,
                                                 std::size_t out_features,
                                                 std::size_t ranks) {
  if (ranks <= 1) return 0.0;
  const double params =
      static_cast<double>(out_features) * static_cast<double>(in_features) +
      static_cast<double>(out_features);
  // Tree allreduce of the gradient: 2(P−1) weight-sized messages in total.
  return 2.0 * static_cast<double>(ranks - 1) * params * sizeof(float);
}

}  // namespace ds
