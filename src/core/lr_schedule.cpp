#include "core/lr_schedule.hpp"

#include <cmath>

#include "support/error.hpp"

namespace ds {

const char* lr_policy_name(LrPolicy policy) {
  switch (policy) {
    case LrPolicy::kFixed: return "fixed";
    case LrPolicy::kStep: return "step";
    case LrPolicy::kExp: return "exp";
    case LrPolicy::kInv: return "inv";
    case LrPolicy::kPoly: return "poly";
  }
  return "?";
}

LrPolicy parse_lr_policy(const std::string& name) {
  if (name == "fixed") return LrPolicy::kFixed;
  if (name == "step") return LrPolicy::kStep;
  if (name == "exp") return LrPolicy::kExp;
  if (name == "inv") return LrPolicy::kInv;
  if (name == "poly") return LrPolicy::kPoly;
  DS_CHECK(false, "unknown lr_policy '" << name << "'");
  return LrPolicy::kFixed;
}

float LrSchedule::rate_at(std::size_t iter, float base_lr) const {
  DS_CHECK(iter >= 1, "iterations are 1-based");
  const double t = static_cast<double>(iter - 1);
  double rate = base_lr;
  switch (policy) {
    case LrPolicy::kFixed:
      break;
    case LrPolicy::kStep:
      DS_CHECK(step_size > 0, "step policy needs step_size > 0");
      rate = base_lr * std::pow(gamma, std::floor(t / static_cast<double>(
                                                          step_size)));
      break;
    case LrPolicy::kExp:
      rate = base_lr * std::pow(gamma, t);
      break;
    case LrPolicy::kInv:
      rate = base_lr * std::pow(1.0 + gamma * t, -power);
      break;
    case LrPolicy::kPoly: {
      DS_CHECK(max_iter > 0, "poly policy needs max_iter > 0");
      const double frac =
          std::min(1.0, t / static_cast<double>(max_iter));
      rate = base_lr * std::pow(1.0 - frac, power);
      break;
    }
  }
  if (warmup_iters > 0 && iter <= warmup_iters) {
    const double progress =
        static_cast<double>(iter) / static_cast<double>(warmup_iters);
    const double factor = warmup_start + (1.0 - warmup_start) * progress;
    rate *= factor;
  }
  return static_cast<float>(rate);
}

}  // namespace ds
