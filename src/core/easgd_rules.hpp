// The update rules of the paper, Equations (1)–(6), as span kernels.
//
//   (1) Wᵢₜ₊₁ = Wᵢₜ − η(∇Wᵢₜ + ρ(Wᵢₜ − W̄ₜ))            — elastic worker step
//   (2) W̄ₜ₊₁ = W̄ₜ + η Σᵢ ρ(Wᵢₜ − W̄ₜ)                   — center (master) step
//   (3,4) Vₜ₊₁ = µVₜ − η∇Wₜ ;  Wₜ₊₁ = Wₜ + Vₜ₊₁          — momentum SGD
//   (5,6) Vᵢₜ₊₁ = µVᵢₜ − η∇Wᵢₜ ;
//         Wᵢₜ₊₁ = Wᵢₜ + Vᵢₜ₊₁ − ηρ(Wᵢₜ − W̄ₜ)            — momentum EASGD worker
//
// Every distributed algorithm in core/ is a communication schedule around
// these five kernels.
#pragma once

#include <cstddef>
#include <span>

namespace ds {

/// Plain SGD: w -= lr * g.
void sgd_step(std::span<float> w, std::span<const float> g, float lr);

/// Momentum SGD, Equations (3)(4): v = mu*v - lr*g; w += v.
void momentum_step(std::span<float> w, std::span<float> v,
                   std::span<const float> g, float lr, float mu);

/// Elastic worker update, Equation (1).
void easgd_worker_step(std::span<float> w, std::span<const float> g,
                       std::span<const float> center, float lr, float rho);

/// Momentum elastic worker update, Equations (5)(6).
void measgd_worker_step(std::span<float> w, std::span<float> v,
                        std::span<const float> g,
                        std::span<const float> center, float lr, float mu,
                        float rho);

/// Single-worker center update (round-robin / parameter-server masters):
/// center += lr*rho*(w - center). One term of Equation (2).
void easgd_center_step(std::span<float> center, std::span<const float> w,
                       float lr, float rho);

/// Full Equation (2) given the precomputed Σᵢ Wᵢ over `workers` workers:
/// center += lr*rho*(sum_w - workers*center).
void easgd_center_step_sum(std::span<float> center,
                           std::span<const float> sum_w, std::size_t workers,
                           float lr, float rho);

}  // namespace ds
