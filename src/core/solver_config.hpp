// Text experiment configs, mirroring the paper artifact's workflow (§10.5:
// "The solver.prototxt files define the algorithmic setting (e.g.
// # iterations, # learning rate, and # testing frequency)").
//
// Format: one `key: value` per line; '#' starts a comment. Example:
//
//   # Sync EASGD3 on the MNIST stand-in
//   method: sync_easgd3
//   net: lenet_s
//   dataset: mnist_like
//   workers: 4
//   max_iter: 300
//   batch_size: 32
//   base_lr: 0.08
//   rho: 2.8125
//   momentum: 0.9
//   test_interval: 25
//   test_iter: 256
//   seed: 1
//   layout: packed
//
// run_solver() assembles the dataset, model factory, and hardware model and
// dispatches to the named algorithm.
#pragma once

#include <string>

#include "core/context.hpp"
#include "core/run_result.hpp"
#include "data/dataset.hpp"
#include "nn/network.hpp"

namespace ds {

struct SolverSpec {
  std::string method = "sync_easgd3";  // see solver_methods() for the list
  std::string net = "lenet_s";         // lenet_s | alexnet_s | vgg_s |
                                       // googlenet_s | tiny_mlp
  std::string dataset = "mnist_like";  // mnist_like | cifar_like |
                                       // imagenet_like
  std::size_t train_count = 2048;
  std::size_t test_count = 512;
  std::uint64_t data_seed = 42;
  TrainConfig train;
};

/// Parse solver text. Throws ds::Error with a line number on any unknown
/// key, malformed line, or unparsable value.
SolverSpec parse_solver(const std::string& text);

/// Read and parse a solver file.
SolverSpec load_solver_file(const std::string& path);

/// The method names run_solver() accepts.
std::vector<std::string> solver_methods();

/// Model factory for the spec's `net` (throws on unknown name).
NetworkFactory make_factory(const SolverSpec& spec);

/// Dataset for the spec's `dataset` preset (throws on unknown name).
TrainTest make_dataset(const SolverSpec& spec);

/// End-to-end: build everything and train. The multi-GPU hardware model
/// uses the paper-scale metadata matching the chosen net.
RunResult run_solver(const SolverSpec& spec, const TrainTest& data);
RunResult run_solver(const SolverSpec& spec);

}  // namespace ds
