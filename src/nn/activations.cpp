#include <cmath>

#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace ds {
namespace {

void prepare_like(const Tensor& x, Tensor& y) {
  if (y.shape() != x.shape()) y = Tensor(x.shape());
}

std::size_t per_sample_elems(const Shape& input) {
  // Batch dim excluded: flops_per_sample contracts on one sample.
  std::size_t n = 1;
  for (std::size_t i = 1; i < input.rank(); ++i) n *= input.dim(i);
  return n;
}

}  // namespace

// --------------------------------- ReLU ------------------------------------

void ReLU::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  prepare_like(x, y);
  const std::size_t n = x.numel();
  const float* xi = x.data();
  float* yo = y.data();
  for (std::size_t i = 0; i < n; ++i) yo[i] = xi[i] > 0.0f ? xi[i] : 0.0f;
}

void ReLU::backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                    Tensor& dx) {
  prepare_like(x, dx);
  const std::size_t n = x.numel();
  const float* xi = x.data();
  const float* g = dy.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < n; ++i) out[i] = xi[i] > 0.0f ? g[i] : 0.0f;
}

double ReLU::flops_per_sample(const Shape& input) const {
  return 2.0 * static_cast<double>(per_sample_elems(input));
}

// --------------------------------- Tanh ------------------------------------

void Tanh::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  prepare_like(x, y);
  const std::size_t n = x.numel();
  const float* xi = x.data();
  float* yo = y.data();
  for (std::size_t i = 0; i < n; ++i) yo[i] = std::tanh(xi[i]);
}

void Tanh::backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                    Tensor& dx) {
  prepare_like(x, dx);
  const std::size_t n = x.numel();
  const float* yo = y.data();
  const float* g = dy.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * (1.0f - yo[i] * yo[i]);
}

double Tanh::flops_per_sample(const Shape& input) const {
  // tanh costed as ~8 flops.
  return 10.0 * static_cast<double>(per_sample_elems(input));
}

// -------------------------------- Sigmoid ----------------------------------

void Sigmoid::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  prepare_like(x, y);
  const std::size_t n = x.numel();
  const float* xi = x.data();
  float* yo = y.data();
  for (std::size_t i = 0; i < n; ++i) yo[i] = 1.0f / (1.0f + std::exp(-xi[i]));
}

void Sigmoid::backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                       Tensor& dx) {
  prepare_like(x, dx);
  const std::size_t n = x.numel();
  const float* yo = y.data();
  const float* g = dy.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * yo[i] * (1.0f - yo[i]);
}

double Sigmoid::flops_per_sample(const Shape& input) const {
  return 10.0 * static_cast<double>(per_sample_elems(input));
}

// -------------------------------- Flatten ----------------------------------

Shape Flatten::output_shape(const Shape& input) const {
  DS_CHECK(input.rank() >= 2, "flatten needs rank >= 2");
  std::size_t features = 1;
  for (std::size_t i = 1; i < input.rank(); ++i) features *= input.dim(i);
  return Shape{input.dim(0), features};
}

void Flatten::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  const Shape out = output_shape(x.shape());
  if (y.shape() != out) y = Tensor(out);
  copy(x.span(), y.span());
}

void Flatten::backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                       Tensor& dx) {
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  copy(dy.span(), dx.span());
}

// -------------------------------- Dropout ----------------------------------

Dropout::Dropout(double drop_prob, std::uint64_t seed)
    : drop_prob_(drop_prob), rng_(seed) {
  DS_CHECK(drop_prob_ >= 0.0 && drop_prob_ < 1.0,
           "dropout probability " << drop_prob_ << " out of [0,1)");
}

std::string Dropout::name() const {
  return "dropout p=" + std::to_string(drop_prob_);
}

void Dropout::forward(const Tensor& x, Tensor& y, bool train) {
  prepare_like(x, y);
  const std::size_t n = x.numel();
  if (!train || drop_prob_ == 0.0) {
    copy(x.span(), y.span());
    return;
  }
  mask_.resize(n);
  const float keep_scale = 1.0f / static_cast<float>(1.0 - drop_prob_);
  const float* xi = x.data();
  float* yo = y.data();
  for (std::size_t i = 0; i < n; ++i) {
    mask_[i] = rng_.uniform() < drop_prob_ ? 0.0f : keep_scale;
    yo[i] = xi[i] * mask_[i];
  }
}

void Dropout::backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                       Tensor& dx) {
  prepare_like(x, dx);
  const std::size_t n = x.numel();
  const float* g = dy.data();
  float* out = dx.data();
  if (mask_.size() != n) {  // eval-mode forward: identity
    copy(dy.span(), dx.span());
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * mask_[i];
}

double Dropout::flops_per_sample(const Shape& input) const {
  return 2.0 * static_cast<double>(per_sample_elems(input));
}

}  // namespace ds
