// Layer interface for the from-scratch CNN framework.
//
// Layers do not own their parameters: a Network allocates one ParamArena
// (packed, or per-layer for the Figure-10 ablation) and binds each layer a
// weight span and a gradient span. backward() accumulates into the bound
// gradient span; callers zero gradients between iterations.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace ds {

class AlignedBuffer;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer name, e.g. "conv 3->8 k5 s1 p2".
  virtual std::string name() const = 0;

  /// Shape of the output given an input shape (batch dim included).
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Number of learnable parameters (weights + biases).
  virtual std::size_t param_count() const { return 0; }

  /// Attach parameter and gradient storage. Called once by the Network.
  virtual void bind(std::span<float> params, std::span<float> grads) {
    DS_CHECK(params.size() == param_count() && grads.size() == param_count(),
             name() << ": bind size " << params.size() << " != "
                    << param_count());
    params_ = params;
    grads_ = grads;
  }

  /// Attach an arena-owned, grow-only kernel scratch buffer (blocked
  /// activation layouts, Winograd tile buffers). Called by
  /// Network::finalize after bind(); layers that need scratch but were
  /// never offered any (standalone use, tests) fall back to a private
  /// buffer. Composite layers forward the same buffer to their inner
  /// layers — each conv call partitions it afresh, so sharing is safe as
  /// long as no single forward()/backward() call is re-entered.
  virtual void bind_scratch(AlignedBuffer& /*scratch*/) {}

  /// Initialise bound parameters (Xavier for weights, zero for biases).
  virtual void init_params(Rng& /*rng*/) {}

  /// y = f(x). `train` enables stochastic behaviour (dropout).
  virtual void forward(const Tensor& x, Tensor& y, bool train) = 0;

  /// Given dL/dy, compute dL/dx and accumulate parameter gradients.
  /// x and y are the tensors from the matching forward() call.
  virtual void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                        Tensor& dx) = 0;

  /// Estimated flops for forward+backward of ONE sample with this input
  /// shape (spatial dims only; batch dim of `input` is ignored). Drives the
  /// virtual-time compute model.
  virtual double flops_per_sample(const Shape& input) const = 0;

 protected:
  std::span<float> params_;
  std::span<float> grads_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace ds
