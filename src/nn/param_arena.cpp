#include "nn/param_arena.hpp"

#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace ds {

ParamArena::ParamArena(const std::vector<std::size_t>& layer_sizes,
                       PackMode mode)
    : mode_(mode), sizes_(layer_sizes) {
  offsets_.reserve(sizes_.size());
  for (const std::size_t s : sizes_) {
    offsets_.push_back(total_);
    total_ += s;
  }
  if (mode_ == PackMode::kPacked) {
    packed_params_.resize(total_);
    packed_grads_.resize(total_);
  } else {
    per_layer_params_.reserve(sizes_.size());
    per_layer_grads_.reserve(sizes_.size());
    for (const std::size_t s : sizes_) {
      per_layer_params_.emplace_back(s);
      per_layer_grads_.emplace_back(s);
    }
  }
}

std::span<float> ParamArena::layer_params(std::size_t layer) {
  DS_CHECK(layer < sizes_.size(), "layer " << layer << " out of range");
  if (mode_ == PackMode::kPacked) {
    return packed_params_.span().subspan(offsets_[layer], sizes_[layer]);
  }
  return per_layer_params_[layer].span();
}

std::span<float> ParamArena::layer_grads(std::size_t layer) {
  DS_CHECK(layer < sizes_.size(), "layer " << layer << " out of range");
  if (mode_ == PackMode::kPacked) {
    return packed_grads_.span().subspan(offsets_[layer], sizes_[layer]);
  }
  return per_layer_grads_[layer].span();
}

std::span<const float> ParamArena::layer_params(std::size_t layer) const {
  return const_cast<ParamArena*>(this)->layer_params(layer);
}

std::span<const float> ParamArena::layer_grads(std::size_t layer) const {
  return const_cast<ParamArena*>(this)->layer_grads(layer);
}

std::span<float> ParamArena::full_params() {
  DS_CHECK(mode_ == PackMode::kPacked,
           "full_params() requires packed layout (Figure 10 baseline uses "
           "per-layer buffers)");
  return packed_params_.span();
}

std::span<float> ParamArena::full_grads() {
  DS_CHECK(mode_ == PackMode::kPacked,
           "full_grads() requires packed layout");
  return packed_grads_.span();
}

std::span<const float> ParamArena::full_params() const {
  return const_cast<ParamArena*>(this)->full_params();
}

std::span<const float> ParamArena::full_grads() const {
  return const_cast<ParamArena*>(this)->full_grads();
}

void ParamArena::zero_grads() {
  if (mode_ == PackMode::kPacked) {
    packed_grads_.fill(0.0f);
  } else {
    for (auto& g : per_layer_grads_) g.fill(0.0f);
  }
}

void ParamArena::copy_params_from(const ParamArena& other) {
  DS_CHECK(other.sizes_ == sizes_, "arena geometry mismatch");
  for (std::size_t l = 0; l < sizes_.size(); ++l) {
    copy(other.layer_params(l), layer_params(l));
  }
}

void ParamArena::copy_grads_from(const ParamArena& other) {
  DS_CHECK(other.sizes_ == sizes_, "arena geometry mismatch");
  for (std::size_t l = 0; l < sizes_.size(); ++l) {
    copy(other.layer_grads(l), layer_grads(l));
  }
}

}  // namespace ds
