#include "nn/param_arena.hpp"

#include <cstring>

#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace ds {

void nchw_to_blocked(const BlockedLayout& layout, std::size_t batch,
                     const float* nchw, float* blocked) {
  const std::size_t h = layout.height;
  const std::size_t w = layout.width;
  const std::size_t pad = layout.pad;
  const std::size_t rf = layout.row_floats();
  const std::size_t rows = layout.rows();
  const std::size_t plane = layout.plane_floats();
  const std::size_t img = layout.image_floats();
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < layout.channels; ++c) {
      const float* src = nchw + (n * layout.channels + c) * h * w;
      float* dst = blocked + n * img + c * plane;
      std::memset(dst, 0, pad * rf * sizeof(float));
      for (std::size_t r = 0; r < h; ++r) {
        float* row = dst + (pad + r) * rf;
        const float* srow = src + r * w;
        if (r + 1 < h) __builtin_prefetch(srow + w);
        std::memset(row, 0, pad * sizeof(float));
        std::memcpy(row + pad, srow, w * sizeof(float));
        std::memset(row + pad + w, 0, (rf - pad - w) * sizeof(float));
      }
      std::memset(dst + (pad + h) * rf, 0,
                  (rows - pad - h) * rf * sizeof(float));
    }
  }
}

void blocked_to_nchw(const BlockedLayout& layout, std::size_t batch,
                     const float* blocked, float* nchw) {
  const std::size_t h = layout.height;
  const std::size_t w = layout.width;
  const std::size_t pad = layout.pad;
  const std::size_t rf = layout.row_floats();
  const std::size_t plane = layout.plane_floats();
  const std::size_t img = layout.image_floats();
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < layout.channels; ++c) {
      const float* src = blocked + n * img + c * plane;
      float* dst = nchw + (n * layout.channels + c) * h * w;
      for (std::size_t r = 0; r < h; ++r) {
        const float* srow = src + (pad + r) * rf + pad;
        if (r + 1 < h) __builtin_prefetch(srow + rf);
        std::memcpy(dst + r * w, srow, w * sizeof(float));
      }
    }
  }
}

ParamArena::ParamArena(const std::vector<std::size_t>& layer_sizes,
                       PackMode mode)
    : mode_(mode), sizes_(layer_sizes) {
  scratch_.resize(sizes_.size());
  offsets_.reserve(sizes_.size());
  for (const std::size_t s : sizes_) {
    offsets_.push_back(total_);
    total_ += s;
  }
  if (mode_ == PackMode::kPacked) {
    packed_params_.resize(total_);
    packed_grads_.resize(total_);
  } else {
    per_layer_params_.reserve(sizes_.size());
    per_layer_grads_.reserve(sizes_.size());
    for (const std::size_t s : sizes_) {
      per_layer_params_.emplace_back(s);
      per_layer_grads_.emplace_back(s);
    }
  }
}

std::span<float> ParamArena::layer_params(std::size_t layer) {
  DS_CHECK(layer < sizes_.size(), "layer " << layer << " out of range");
  if (mode_ == PackMode::kPacked) {
    return packed_params_.span().subspan(offsets_[layer], sizes_[layer]);
  }
  return per_layer_params_[layer].span();
}

std::span<float> ParamArena::layer_grads(std::size_t layer) {
  DS_CHECK(layer < sizes_.size(), "layer " << layer << " out of range");
  if (mode_ == PackMode::kPacked) {
    return packed_grads_.span().subspan(offsets_[layer], sizes_[layer]);
  }
  return per_layer_grads_[layer].span();
}

std::span<const float> ParamArena::layer_params(std::size_t layer) const {
  return const_cast<ParamArena*>(this)->layer_params(layer);
}

std::span<const float> ParamArena::layer_grads(std::size_t layer) const {
  return const_cast<ParamArena*>(this)->layer_grads(layer);
}

std::span<float> ParamArena::full_params() {
  DS_CHECK(mode_ == PackMode::kPacked,
           "full_params() requires packed layout (Figure 10 baseline uses "
           "per-layer buffers)");
  return packed_params_.span();
}

std::span<float> ParamArena::full_grads() {
  DS_CHECK(mode_ == PackMode::kPacked,
           "full_grads() requires packed layout");
  return packed_grads_.span();
}

std::span<const float> ParamArena::full_params() const {
  return const_cast<ParamArena*>(this)->full_params();
}

std::span<const float> ParamArena::full_grads() const {
  return const_cast<ParamArena*>(this)->full_grads();
}

AlignedBuffer& ParamArena::layer_scratch(std::size_t layer) {
  DS_CHECK(layer < scratch_.size(), "layer " << layer << " out of range");
  return scratch_[layer];
}

void ParamArena::zero_grads() {
  if (mode_ == PackMode::kPacked) {
    packed_grads_.fill(0.0f);
  } else {
    for (auto& g : per_layer_grads_) g.fill(0.0f);
  }
}

void ParamArena::copy_params_from(const ParamArena& other) {
  DS_CHECK(other.sizes_ == sizes_, "arena geometry mismatch");
  for (std::size_t l = 0; l < sizes_.size(); ++l) {
    copy(other.layer_params(l), layer_params(l));
  }
}

void ParamArena::copy_grads_from(const ParamArena& other) {
  DS_CHECK(other.sizes_ == sizes_, "arena geometry mismatch");
  for (std::size_t l = 0; l < sizes_.size(); ++l) {
    copy(other.layer_grads(l), layer_grads(l));
  }
}

}  // namespace ds
