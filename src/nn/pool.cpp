#include <limits>
#include <sstream>

#include "nn/layers.hpp"

namespace ds {
namespace {

Shape pooled_shape(const Shape& input, std::size_t kernel, std::size_t stride,
                   const char* what) {
  DS_CHECK(input.rank() == 4, what << " input must be NCHW");
  DS_CHECK(input.dim(2) >= kernel && input.dim(3) >= kernel,
           what << ": window " << kernel << " larger than " << input.str());
  const std::size_t ho = (input.dim(2) - kernel) / stride + 1;
  const std::size_t wo = (input.dim(3) - kernel) / stride + 1;
  return Shape{input.dim(0), input.dim(1), ho, wo};
}

}  // namespace

// -------------------------------- MaxPool ----------------------------------

MaxPool2D::MaxPool2D(std::size_t kernel, std::size_t stride, std::size_t pad)
    : kernel_(kernel), stride_(stride), pad_(pad) {
  DS_CHECK(kernel_ > 0 && stride_ > 0, "pool dims must be positive");
  DS_CHECK(pad_ < kernel_, "pool pad must be smaller than kernel");
}

std::string MaxPool2D::name() const {
  std::ostringstream os;
  os << "maxpool k" << kernel_ << " s" << stride_ << " p" << pad_;
  return os.str();
}

Shape MaxPool2D::output_shape(const Shape& input) const {
  DS_CHECK(input.rank() == 4, "maxpool input must be NCHW");
  DS_CHECK(input.dim(2) + 2 * pad_ >= kernel_ &&
               input.dim(3) + 2 * pad_ >= kernel_,
           "maxpool: window " << kernel_ << " larger than " << input.str());
  const std::size_t ho = (input.dim(2) + 2 * pad_ - kernel_) / stride_ + 1;
  const std::size_t wo = (input.dim(3) + 2 * pad_ - kernel_) / stride_ + 1;
  return Shape{input.dim(0), input.dim(1), ho, wo};
}

void MaxPool2D::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  // Shape construction heap-allocates; memoize so the steady-state hot loop
  // (fixed or alternating train/eval batch shapes) does no allocation.
  if (x.shape() != in_cache_) {
    in_cache_ = x.shape();
    out_cache_ = output_shape(in_cache_);
  }
  const Shape& out = out_cache_;
  if (y.shape() != out) y = Tensor(out);
  argmax_.resize(out.numel());  // grow-only capacity, no realloc once warm
  const std::size_t planes = x.dim(0) * x.dim(1);
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t ho = out.dim(2), wo = out.dim(3);
  for (std::size_t p = 0; p < planes; ++p) {
    const float* xp = x.data() + p * h * w;
    float* yp = y.data() + p * ho * wo;
    std::size_t* ap = argmax_.data() + p * ho * wo;
    for (std::size_t oh = 0; oh < ho; ++oh) {
      for (std::size_t ow = 0; ow < wo; ++ow) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t kh = 0; kh < kernel_; ++kh) {
          const long ih = static_cast<long>(oh * stride_ + kh) -
                          static_cast<long>(pad_);
          if (ih < 0 || ih >= static_cast<long>(h)) continue;
          for (std::size_t kw = 0; kw < kernel_; ++kw) {
            const long iw = static_cast<long>(ow * stride_ + kw) -
                            static_cast<long>(pad_);
            if (iw < 0 || iw >= static_cast<long>(w)) continue;
            const std::size_t idx =
                static_cast<std::size_t>(ih) * w + static_cast<std::size_t>(iw);
            if (xp[idx] > best) {
              best = xp[idx];
              best_idx = idx;
            }
          }
        }
        yp[oh * wo + ow] = best;
        ap[oh * wo + ow] = p * h * w + best_idx;
      }
    }
  }
}

void MaxPool2D::backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                         Tensor& dx) {
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  dx.zero();
  DS_CHECK(argmax_.size() == y.numel(), "maxpool backward before forward");
  const float* g = dy.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) out[argmax_[i]] += g[i];
}

double MaxPool2D::flops_per_sample(const Shape& input) const {
  const Shape out = output_shape(input);
  const double window = static_cast<double>(kernel_ * kernel_);
  double per_sample = 1.0;
  for (std::size_t i = 1; i < out.rank(); ++i) {
    per_sample *= static_cast<double>(out.dim(i));
  }
  return per_sample * window;
}

// -------------------------------- AvgPool ----------------------------------

AvgPool2D::AvgPool2D(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  DS_CHECK(kernel_ > 0 && stride_ > 0, "pool dims must be positive");
}

std::string AvgPool2D::name() const {
  std::ostringstream os;
  os << "avgpool k" << kernel_ << " s" << stride_;
  return os.str();
}

Shape AvgPool2D::output_shape(const Shape& input) const {
  return pooled_shape(input, kernel_, stride_, "avgpool");
}

void AvgPool2D::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  if (x.shape() != in_cache_) {
    in_cache_ = x.shape();
    out_cache_ = output_shape(in_cache_);
  }
  const Shape& out = out_cache_;
  if (y.shape() != out) y = Tensor(out);
  const std::size_t planes = x.dim(0) * x.dim(1);
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t ho = out.dim(2), wo = out.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t p = 0; p < planes; ++p) {
    const float* xp = x.data() + p * h * w;
    float* yp = y.data() + p * ho * wo;
    for (std::size_t oh = 0; oh < ho; ++oh) {
      for (std::size_t ow = 0; ow < wo; ++ow) {
        float acc = 0.0f;
        for (std::size_t kh = 0; kh < kernel_; ++kh) {
          const float* row = xp + (oh * stride_ + kh) * w + ow * stride_;
          for (std::size_t kw = 0; kw < kernel_; ++kw) acc += row[kw];
        }
        yp[oh * wo + ow] = acc * inv;
      }
    }
  }
}

void AvgPool2D::backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                         Tensor& dx) {
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  dx.zero();
  const std::size_t planes = x.dim(0) * x.dim(1);
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t ho = y.dim(2), wo = y.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::size_t p = 0; p < planes; ++p) {
    const float* gp = dy.data() + p * ho * wo;
    float* dxp = dx.data() + p * h * w;
    for (std::size_t oh = 0; oh < ho; ++oh) {
      for (std::size_t ow = 0; ow < wo; ++ow) {
        const float g = gp[oh * wo + ow] * inv;
        for (std::size_t kh = 0; kh < kernel_; ++kh) {
          float* row = dxp + (oh * stride_ + kh) * w + ow * stride_;
          for (std::size_t kw = 0; kw < kernel_; ++kw) row[kw] += g;
        }
      }
    }
  }
}

double AvgPool2D::flops_per_sample(const Shape& input) const {
  const Shape out = output_shape(input);
  const double window = static_cast<double>(kernel_ * kernel_);
  double per_sample = 1.0;
  for (std::size_t i = 1; i < out.rank(); ++i) {
    per_sample *= static_cast<double>(out.dim(i));
  }
  return per_sample * window;
}

}  // namespace ds
