#include <cstring>
#include <sstream>

#include "nn/layers.hpp"

namespace ds {

InceptionBlock::InceptionBlock(std::size_t in_channels, std::size_t c1x1,
                               std::size_t c3x3_reduce, std::size_t c3x3,
                               std::size_t c5x5_reduce, std::size_t c5x5,
                               std::size_t pool_proj)
    : in_c_(in_channels),
      out_1x1_(c1x1),
      out_3x3_(c3x3),
      out_5x5_(c5x5),
      out_pool_(pool_proj) {
  branches_.resize(4);
  // Branch 0: 1×1 conv.
  branches_[0].stages.push_back(std::make_unique<Conv2D>(in_c_, c1x1, 1));
  branches_[0].stages.push_back(std::make_unique<ReLU>());
  // Branch 1: 1×1 reduce then 3×3 (pad 1 keeps spatial size).
  branches_[1].stages.push_back(std::make_unique<Conv2D>(in_c_, c3x3_reduce, 1));
  branches_[1].stages.push_back(std::make_unique<ReLU>());
  branches_[1].stages.push_back(
      std::make_unique<Conv2D>(c3x3_reduce, c3x3, 3, 1, 1));
  branches_[1].stages.push_back(std::make_unique<ReLU>());
  // Branch 2: 1×1 reduce then 5×5 (pad 2).
  branches_[2].stages.push_back(std::make_unique<Conv2D>(in_c_, c5x5_reduce, 1));
  branches_[2].stages.push_back(std::make_unique<ReLU>());
  branches_[2].stages.push_back(
      std::make_unique<Conv2D>(c5x5_reduce, c5x5, 5, 1, 2));
  branches_[2].stages.push_back(std::make_unique<ReLU>());
  // Branch 3: 3×3 maxpool (stride 1, pad 1) then 1×1 projection.
  branches_[3].stages.push_back(std::make_unique<MaxPool2D>(3, 1, 1));
  branches_[3].stages.push_back(std::make_unique<Conv2D>(in_c_, pool_proj, 1));
  branches_[3].stages.push_back(std::make_unique<ReLU>());
}

std::string InceptionBlock::name() const {
  std::ostringstream os;
  os << "inception " << in_c_ << "->" << out_channels();
  return os.str();
}

std::size_t InceptionBlock::out_channels() const {
  return out_1x1_ + out_3x3_ + out_5x5_ + out_pool_;
}

Shape InceptionBlock::output_shape(const Shape& input) const {
  DS_CHECK(input.rank() == 4, "inception input must be NCHW");
  DS_CHECK(input.dim(1) == in_c_,
           name() << ": input has " << input.dim(1) << " channels");
  return Shape{input.dim(0), out_channels(), input.dim(2), input.dim(3)};
}

std::size_t InceptionBlock::param_count() const {
  std::size_t n = 0;
  for (const auto& b : branches_) {
    for (const auto& stage : b.stages) n += stage->param_count();
  }
  return n;
}

void InceptionBlock::bind(std::span<float> params, std::span<float> grads) {
  DS_CHECK(params.size() == param_count(), "inception bind size mismatch");
  std::size_t offset = 0;
  for (auto& b : branches_) {
    for (auto& stage : b.stages) {
      const std::size_t n = stage->param_count();
      stage->bind(params.subspan(offset, n), grads.subspan(offset, n));
      offset += n;
    }
  }
  params_ = params;
  grads_ = grads;
}

void InceptionBlock::bind_scratch(AlignedBuffer& scratch) {
  // Branches run sequentially, so every inner conv can share one buffer.
  for (auto& b : branches_) {
    for (auto& stage : b.stages) stage->bind_scratch(scratch);
  }
}

void InceptionBlock::init_params(Rng& rng) {
  for (auto& b : branches_) {
    for (auto& stage : b.stages) stage->init_params(rng);
  }
}

void InceptionBlock::run_branch_forward(Branch& b, const Tensor& x,
                                        bool train) {
  b.acts.resize(b.stages.size());
  const Tensor* in = &x;
  for (std::size_t s = 0; s < b.stages.size(); ++s) {
    b.stages[s]->forward(*in, b.acts[s], train);
    in = &b.acts[s];
  }
}

void InceptionBlock::forward(const Tensor& x, Tensor& y, bool train) {
  const Shape out = output_shape(x.shape());
  if (y.shape() != out) y = Tensor(out);
  for (auto& b : branches_) run_branch_forward(b, x, train);

  // Concatenate branch outputs along the channel dimension.
  const std::size_t batch = x.dim(0);
  const std::size_t hw = out.dim(2) * out.dim(3);
  const std::size_t out_c = out.dim(1);
  std::size_t c_offset = 0;
  for (const auto& b : branches_) {
    const Tensor& bo = b.acts.back();
    const std::size_t bc = bo.dim(1);
    for (std::size_t n = 0; n < batch; ++n) {
      std::memcpy(y.data() + (n * out_c + c_offset) * hw,
                  bo.data() + n * bc * hw, bc * hw * sizeof(float));
    }
    c_offset += bc;
  }
}

void InceptionBlock::backward(const Tensor& x, const Tensor& /*y*/,
                              const Tensor& dy, Tensor& dx) {
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  dx.zero();
  const std::size_t batch = x.dim(0);
  const std::size_t hw = dy.dim(2) * dy.dim(3);
  const std::size_t out_c = dy.dim(1);

  std::size_t c_offset = 0;
  Tensor branch_dy;
  Tensor stage_dx;
  Tensor next_grad;
  for (auto& b : branches_) {
    DS_CHECK(!b.acts.empty(), "inception backward before forward");
    const std::size_t bc = b.acts.back().dim(1);
    // Slice dy channels belonging to this branch.
    if (branch_dy.shape() != b.acts.back().shape()) {
      branch_dy = Tensor(b.acts.back().shape());
    }
    for (std::size_t n = 0; n < batch; ++n) {
      std::memcpy(branch_dy.data() + n * bc * hw,
                  dy.data() + (n * out_c + c_offset) * hw,
                  bc * hw * sizeof(float));
    }
    // Back-propagate through the branch stages.
    Tensor* grad = &branch_dy;
    for (std::size_t s = b.stages.size(); s-- > 0;) {
      const Tensor& stage_in = (s == 0) ? x : b.acts[s - 1];
      b.stages[s]->backward(stage_in, b.acts[s], *grad, stage_dx);
      std::swap(stage_dx, next_grad);
      grad = &next_grad;
    }
    // Sum branch input-gradients.
    const float* g = grad->data();
    float* out = dx.data();
    const std::size_t n = dx.numel();
    for (std::size_t i = 0; i < n; ++i) out[i] += g[i];
    c_offset += bc;
  }
}

double InceptionBlock::flops_per_sample(const Shape& input) const {
  double total = 0.0;
  for (const auto& b : branches_) {
    Shape s = input;
    for (const auto& stage : b.stages) {
      total += stage->flops_per_sample(s);
      s = stage->output_shape(s);
    }
  }
  return total;
}

}  // namespace ds
