#include <cmath>
#include <sstream>

#include "nn/layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace ds {

FullyConnected::FullyConnected(std::size_t in_features,
                               std::size_t out_features)
    : in_(in_features), out_(out_features) {
  DS_CHECK(in_ > 0 && out_ > 0, "fc dims must be positive");
}

std::string FullyConnected::name() const {
  std::ostringstream os;
  os << "fc " << in_ << "->" << out_;
  return os.str();
}

Shape FullyConnected::output_shape(const Shape& input) const {
  DS_CHECK(input.rank() == 2, "fc input must be rank 2, got " << input.str());
  DS_CHECK(input.dim(1) == in_,
           name() << ": input features " << input.dim(1));
  return Shape{input.dim(0), out_};
}

std::size_t FullyConnected::param_count() const { return out_ * in_ + out_; }

void FullyConnected::init_params(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  const std::size_t w = out_ * in_;
  for (std::size_t i = 0; i < w; ++i) {
    params_[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
  for (std::size_t i = w; i < params_.size(); ++i) params_[i] = 0.0f;
}

void FullyConnected::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  const Shape out = output_shape(x.shape());
  if (y.shape() != out) y = Tensor(out);
  const std::size_t batch = x.dim(0);
  const float* weights = params_.data();  // out × in
  const float* bias = params_.data() + out_ * in_;
  // Y = X · Wᵀ + b : [batch × in] · [in × out], the per-feature bias fused
  // into the C write-back epilogue.
  GemmEpilogue ep;
  ep.col_bias = bias;
  gemm(Transpose::kNo, Transpose::kYes, batch, out_, in_, 1.0f, x.data(), in_,
       weights, in_, 0.0f, y.data(), out_, ep);
}

void FullyConnected::backward(const Tensor& x, const Tensor& /*y*/,
                              const Tensor& dy, Tensor& dx) {
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  const std::size_t batch = x.dim(0);
  const float* weights = params_.data();
  float* dweights = grads_.data();
  float* dbias = grads_.data() + out_ * in_;
  // dW += dYᵀ · X : [out × batch] · [batch × in]
  gemm(Transpose::kYes, Transpose::kNo, out_, in_, batch, 1.0f, dy.data(),
       x.data(), 1.0f, dweights);
  // db += column sums of dY
  for (std::size_t n = 0; n < batch; ++n) {
    axpy(1.0f, {dy.data() + n * out_, out_}, {dbias, out_});
  }
  // dX = dY · W : [batch × out] · [out × in]
  gemm(Transpose::kNo, Transpose::kNo, batch, in_, out_, 1.0f, dy.data(),
       weights, 0.0f, dx.data());
}

double FullyConnected::flops_per_sample(const Shape& /*input*/) const {
  return 3.0 * gemm_flops(1, out_, in_);
}

}  // namespace ds
