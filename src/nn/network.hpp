// Sequential network container: owns layers + the ParamArena, runs
// forward/backward over mini-batches, and exposes the packed parameter view
// that the distributed algorithms communicate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/param_arena.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace ds {

class Network {
 public:
  /// input_shape excludes the batch dimension, e.g. {1, 28, 28}.
  explicit Network(Shape input_shape, PackMode pack_mode = PackMode::kPacked);

  /// Append a layer; returns *this for chaining in model-zoo builders.
  Network& add(LayerPtr layer);

  /// Allocate the arena, bind every layer, and Xavier-initialise. Must be
  /// called exactly once, after the last add().
  void finalize(Rng& rng);
  bool finalized() const { return finalized_; }

  // -------------------------------------------------------------------
  // Training / inference.
  // -------------------------------------------------------------------

  /// Forward pass; returns the logits (reference valid until next call).
  const Tensor& forward(const Tensor& batch, bool train);

  /// Batched forward-only inference — the serving front-end's hot path.
  /// Eval-mode forward (dropout off, no gradient side effects) with the
  /// batch geometry validated against the network's input shape, which
  /// plain forward() skips for speed. Coalescing B requests into one call
  /// here is bitwise-identical to B batch-1 calls for every deterministic
  /// ConvAlgo (pinned by tests/serve_parity_test.cpp).
  const Tensor& infer(const Tensor& batch);

  /// Combined forward + loss + full backward. Gradients are ACCUMULATED
  /// into the arena — call zero_grads() first for a fresh gradient.
  LossResult forward_backward(const Tensor& batch,
                              std::span<const std::int32_t> labels);

  /// Called as backward RETIRES layer `i` — its gradient is final in the
  /// arena while layers < i are still being back-propagated. This is the
  /// attachment point of the bucketed exchange pipeline (DESIGN.md §10):
  /// the hook may launch communication for the retired slice, but must not
  /// touch layers that have not retired yet.
  using LayerReadyHook = std::function<void(std::size_t layer)>;

  /// forward_backward with a per-layer retire hook; hook may be empty.
  LossResult forward_backward(const Tensor& batch,
                              std::span<const std::int32_t> labels,
                              const LayerReadyHook& on_layer_retired);

  /// Loss/accuracy on a batch without touching gradients.
  LossResult evaluate_batch(const Tensor& batch,
                            std::span<const std::int32_t> labels);

  // -------------------------------------------------------------------
  // Parameters.
  // -------------------------------------------------------------------

  ParamArena& arena() { return arena_; }
  const ParamArena& arena() const { return arena_; }
  std::size_t param_count() const { return arena_.total_params(); }
  std::size_t param_bytes() const { return param_count() * sizeof(float); }
  void zero_grads() { arena_.zero_grads(); }

  /// Per-layer parameter sizes of the learnable layers (non-empty entries
  /// only) — what a per-layer communication schedule sends as separate
  /// messages (Figure 10 baseline).
  std::vector<std::size_t> comm_chunk_sizes() const;

  /// Copy all weights from another network of identical architecture.
  void copy_params_from(const Network& other) {
    arena_.copy_params_from(other.arena());
  }

  // -------------------------------------------------------------------
  // Introspection.
  // -------------------------------------------------------------------

  const Shape& input_shape() const { return input_shape_; }
  std::size_t layer_count() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Estimated forward+backward flops for one training sample.
  double flops_per_sample() const { return flops_per_sample_; }

  /// Per-layer flops behind flops_per_sample() — the weights a bucketed
  /// schedule uses to apportion the backward pass across layer retires.
  const std::vector<double>& layer_flops() const { return layer_flops_; }

  /// Multi-line architecture summary.
  std::string summary() const;

 private:
  Shape batched(const Shape& sample_shape, std::size_t batch) const;

  Shape input_shape_;
  PackMode pack_mode_;
  std::vector<LayerPtr> layers_;
  ParamArena arena_;
  SoftmaxCrossEntropy loss_;
  bool finalized_ = false;
  double flops_per_sample_ = 0.0;
  std::vector<double> layer_flops_;

  // Activation/gradient caches reused across iterations.
  std::vector<Tensor> acts_;
  std::vector<Tensor> grads_cache_;
  Tensor dlogits_;

  // Interned per-layer span names ("fwd conv3x3", "bwd conv3x3"), built
  // lazily the first time a traced pass runs so untraced runs never pay the
  // interning cost. Trace events store raw pointers, hence interning.
  mutable std::vector<const char*> fwd_trace_names_;
  mutable std::vector<const char*> bwd_trace_names_;
  const char* fwd_trace_name(std::size_t i) const;
  const char* bwd_trace_name(std::size_t i) const;
};

/// Builds a fresh network of some fixed architecture. Distributed workers
/// call the factory once each so every device owns an independent replica.
using NetworkFactory = std::function<std::unique_ptr<Network>()>;

}  // namespace ds
