#include <cmath>
#include <cstring>
#include <sstream>

#include "nn/layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace ds {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  DS_CHECK(in_c_ > 0 && out_c_ > 0 && kernel_ > 0 && stride_ > 0,
           "conv dims must be positive");
}

std::string Conv2D::name() const {
  std::ostringstream os;
  os << "conv " << in_c_ << "->" << out_c_ << " k" << kernel_ << " s"
     << stride_ << " p" << pad_;
  return os.str();
}

ConvGeom Conv2D::geom_for(const Shape& input) const {
  DS_CHECK(input.rank() == 4, "conv input must be NCHW, got " << input.str());
  DS_CHECK(input.dim(1) == in_c_,
           name() << ": input has " << input.dim(1) << " channels");
  ConvGeom g;
  g.channels = in_c_;
  g.height = input.dim(2);
  g.width = input.dim(3);
  g.kernel = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  DS_CHECK(g.height + 2 * g.pad >= g.kernel && g.width + 2 * g.pad >= g.kernel,
           name() << ": kernel larger than padded input " << input.str());
  return g;
}

Shape Conv2D::output_shape(const Shape& input) const {
  const ConvGeom g = geom_for(input);
  return Shape{input.dim(0), out_c_, g.out_height(), g.out_width()};
}

std::size_t Conv2D::param_count() const {
  return out_c_ * in_c_ * kernel_ * kernel_ + out_c_;
}

void Conv2D::init_params(Rng& rng) {
  // Xavier/Glorot uniform over fan_in + fan_out (paper Algorithm 1 line 2).
  const std::size_t fan_in = in_c_ * kernel_ * kernel_;
  const std::size_t fan_out = out_c_ * kernel_ * kernel_;
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  const std::size_t w = out_c_ * in_c_ * kernel_ * kernel_;
  for (std::size_t i = 0; i < w; ++i) {
    params_[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
  for (std::size_t i = w; i < params_.size(); ++i) params_[i] = 0.0f;
}

void Conv2D::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  const ConvGeom g = geom_for(x.shape());
  const Shape out = output_shape(x.shape());
  if (y.shape() != out) y = Tensor(out);
  const std::size_t batch = x.dim(0);
  const std::size_t rows = g.col_rows();
  const std::size_t cols = g.col_cols();
  const std::size_t bc = batch * cols;
  col_ws_.ensure(rows * bc);
  out_ws_.ensure(out_c_ * bc);

  const float* weights = params_.data();           // out_c × rows
  const float* bias = params_.data() + out_c_ * rows;
  const std::size_t in_plane = in_c_ * g.height * g.width;
  const std::size_t out_plane = out_c_ * cols;

  // Lower the whole batch into one [rows × batch·cols] column matrix
  // (image n owns columns [n·cols, (n+1)·cols)) …
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(g, x.data() + n * in_plane, col_ws_.data() + n * cols, bc);
  }
  // … so the layer is one GEMM, [out_c × rows] · [rows × batch·cols], with
  // the per-channel bias fused into the C write-back epilogue.
  GemmEpilogue ep;
  ep.row_bias = bias;
  gemm(Transpose::kNo, Transpose::kNo, out_c_, bc, rows, 1.0f, weights, rows,
       col_ws_.data(), bc, 0.0f, out_ws_.data(), bc, ep);
  // Un-batch [out_c × batch·cols] into the NCHW output.
  for (std::size_t n = 0; n < batch; ++n) {
    float* yn = y.data() + n * out_plane;
    for (std::size_t f = 0; f < out_c_; ++f) {
      std::memcpy(yn + f * cols, out_ws_.data() + f * bc + n * cols,
                  cols * sizeof(float));
    }
  }
}

void Conv2D::backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                      Tensor& dx) {
  const ConvGeom g = geom_for(x.shape());
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  dx.zero();
  const std::size_t batch = x.dim(0);
  const std::size_t rows = g.col_rows();
  const std::size_t cols = g.col_cols();
  const std::size_t bc = batch * cols;
  col_ws_.ensure(rows * bc);
  out_ws_.ensure(out_c_ * bc);
  dcol_ws_.ensure(rows * bc);

  const float* weights = params_.data();
  float* dweights = grads_.data();                  // out_c × rows
  float* dbias = grads_.data() + out_c_ * rows;
  const std::size_t in_plane = in_c_ * g.height * g.width;
  const std::size_t out_plane = out_c_ * cols;

  // Batched column matrix of the input and batched layout of dY, mirroring
  // the forward lowering.
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(g, x.data() + n * in_plane, col_ws_.data() + n * cols, bc);
    const float* dyn = dy.data() + n * out_plane;
    for (std::size_t f = 0; f < out_c_; ++f) {
      std::memcpy(out_ws_.data() + f * bc + n * cols, dyn + f * cols,
                  cols * sizeof(float));
    }
  }
  // dW += dY_b · col_bᵀ : [out_c × batch·cols] · [batch·cols × rows].
  gemm(Transpose::kNo, Transpose::kYes, out_c_, rows, bc, 1.0f,
       out_ws_.data(), bc, col_ws_.data(), bc, 1.0f, dweights, rows);
  // db += row sums of batched dY.
  add_row_sums(out_ws_.data(), out_c_, bc, dbias);
  // dcol_b = Wᵀ · dY_b : [rows × out_c] · [out_c × batch·cols].
  gemm(Transpose::kYes, Transpose::kNo, rows, bc, out_c_, 1.0f, weights, rows,
       out_ws_.data(), bc, 0.0f, dcol_ws_.data(), bc);
  for (std::size_t n = 0; n < batch; ++n) {
    col2im(g, dcol_ws_.data() + n * cols, bc, dx.data() + n * in_plane);
  }
}

double Conv2D::flops_per_sample(const Shape& input) const {
  const ConvGeom g = geom_for(input);
  const double fwd = gemm_flops(out_c_, g.col_cols(), g.col_rows());
  // backward: dW GEMM + dX GEMM, each the same size as forward.
  return 3.0 * fwd;
}

}  // namespace ds
