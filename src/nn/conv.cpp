#include <cmath>
#include <cstring>
#include <sstream>

#include "nn/layers.hpp"
#include "nn/param_arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/direct_conv.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/ops.hpp"
#include "tensor/winograd.hpp"

namespace ds {

namespace {

bool same_geom(const ConvGeom& a, const ConvGeom& b) {
  return a.channels == b.channels && a.height == b.height &&
         a.width == b.width && a.kernel == b.kernel && a.stride == b.stride &&
         a.pad == b.pad;
}

// Dispatch accounting: always-on metrics, plus (when tracing) a Chrome
// counter track sampling the cumulative conv flops and lowering traffic so
// the im2col-vs-direct split shows up on the trace timeline.
struct ConvMetrics {
  obs::Counter& calls = obs::metrics().counter(obs::names::kConvCalls);
  obs::AccumDouble& flops = obs::metrics().accum(obs::names::kConvFlops);
  obs::Counter& im2col = obs::metrics().counter(obs::names::kConvIm2colCalls);
  obs::Counter& direct = obs::metrics().counter(obs::names::kConvDirectCalls);
  obs::Counter& wino = obs::metrics().counter(obs::names::kConvWinogradCalls);
  obs::Counter& int8 = obs::metrics().counter(obs::names::kConvInt8Calls);
};

void count_dispatch(ConvAlgo algo, double flops) {
  static ConvMetrics cm;
  cm.calls.add();
  cm.flops.add(flops);
  switch (algo) {
    case ConvAlgo::kIm2col:
      cm.im2col.add();
      break;
    case ConvAlgo::kDirect:
      cm.direct.add();
      break;
    case ConvAlgo::kWinograd:
      cm.wino.add();
      break;
    case ConvAlgo::kInt8:
      cm.int8.add();
      break;
    case ConvAlgo::kAuto:
      break;  // resolve_conv_algo never returns kAuto
  }
  if (obs::tracing_enabled()) {
    obs::counter(obs::names::kConvFlops, cm.flops.value());
    obs::counter(obs::names::kIm2colBytes,
                 obs::metrics().accum(obs::names::kIm2colBytes).value());
  }
}

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               ConvAlgo algo)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      algo_(algo) {
  DS_CHECK(in_c_ > 0 && out_c_ > 0 && kernel_ > 0 && stride_ > 0,
           "conv dims must be positive");
}

std::string Conv2D::name() const {
  std::ostringstream os;
  os << "conv " << in_c_ << "->" << out_c_ << " k" << kernel_ << " s"
     << stride_ << " p" << pad_;
  return os.str();
}

ConvGeom Conv2D::geom_for(const Shape& input) const {
  DS_CHECK(input.rank() == 4, "conv input must be NCHW, got " << input.str());
  DS_CHECK(input.dim(1) == in_c_,
           name() << ": input has " << input.dim(1) << " channels");
  ConvGeom g;
  g.channels = in_c_;
  g.height = input.dim(2);
  g.width = input.dim(3);
  g.kernel = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  DS_CHECK(g.height + 2 * g.pad >= g.kernel && g.width + 2 * g.pad >= g.kernel,
           name() << ": kernel larger than padded input " << input.str());
  return g;
}

ConvAlgo Conv2D::resolved_algo(const Shape& input) const {
  return resolve_conv_algo(algo_, geom_for(input), out_c_);
}

Shape Conv2D::output_shape(const Shape& input) const {
  const ConvGeom g = geom_for(input);
  return Shape{input.dim(0), out_c_, g.out_height(), g.out_width()};
}

std::size_t Conv2D::param_count() const {
  return out_c_ * in_c_ * kernel_ * kernel_ + out_c_;
}

void Conv2D::init_params(Rng& rng) {
  // Xavier/Glorot uniform over fan_in + fan_out (paper Algorithm 1 line 2).
  const std::size_t fan_in = in_c_ * kernel_ * kernel_;
  const std::size_t fan_out = out_c_ * kernel_ * kernel_;
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  const std::size_t w = out_c_ * in_c_ * kernel_ * kernel_;
  for (std::size_t i = 0; i < w; ++i) {
    params_[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
  for (std::size_t i = w; i < params_.size(); ++i) params_[i] = 0.0f;
}

// im2col lowering path, fp32 (quantized=false) or int8 (quantized=true).
// Either way col_ws_ ends up holding this input's fp32 column matrix, which
// backward_lowered reuses for the dW GEMM.
void Conv2D::forward_lowered(const ConvGeom& g, const Tensor& x, Tensor& y,
                             bool quantized) {
  const std::size_t batch = x.dim(0);
  const std::size_t rows = g.col_rows();
  const std::size_t cols = g.col_cols();
  const std::size_t bc = batch * cols;
  col_ws_.ensure(rows * bc);
  out_ws_.ensure(out_c_ * bc);

  const float* weights = params_.data();  // out_c × rows
  const float* bias = params_.data() + out_c_ * rows;
  const std::size_t in_plane = in_c_ * g.height * g.width;
  const std::size_t out_plane = out_c_ * cols;

  // Lower the whole batch into one [rows × batch·cols] column matrix
  // (image n owns columns [n·cols, (n+1)·cols)) …
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(g, x.data() + n * in_plane, col_ws_.data() + n * cols, bc);
  }
  col_geom_ = g;
  col_batch_ = batch;
  col_valid_ = true;
  if (!quantized) {
    // … so the layer is one GEMM, [out_c × rows] · [rows × batch·cols],
    // with the per-channel bias fused into the C write-back epilogue.
    GemmEpilogue ep;
    ep.row_bias = bias;
    gemm(Transpose::kNo, Transpose::kNo, out_c_, bc, rows, 1.0f, weights,
         rows, col_ws_.data(), bc, 0.0f, out_ws_.data(), bc, ep);
  } else {
    // Int8: quantize weights and columns with the wire codec's affine
    // min/step encoding, run the exact-integer GEMM, dequantize in the
    // epilogue. k = rows is capped by the int32-accumulator bound.
    DS_CHECK(rows <= kGemmU8MaxK,
             name() << ": receptive field too deep for int8 GEMM");
    Int8Codec::encode(std::span<const float>(weights, out_c_ * rows),
                      wq_blob_);
    Int8Codec::encode(std::span<const float>(col_ws_.data(), rows * bc),
                      xq_blob_);
    gemm_u8(out_c_, bc, rows, wq_blob_.data.data(), wq_blob_.min,
            wq_blob_.step, xq_blob_.data.data(), bc, xq_blob_.min,
            xq_blob_.step, out_ws_.data(), bc, bias);
  }
  // Un-batch [out_c × batch·cols] into the NCHW output.
  for (std::size_t n = 0; n < batch; ++n) {
    float* yn = y.data() + n * out_plane;
    for (std::size_t f = 0; f < out_c_; ++f) {
      std::memcpy(yn + f * cols, out_ws_.data() + f * bc + n * cols,
                  cols * sizeof(float));
    }
  }
}

// Direct / Winograd forward over the blocked activation layout.
void Conv2D::forward_direct(const ConvGeom& g, const Tensor& x, Tensor& y,
                            bool winograd) {
  const std::size_t batch = x.dim(0);
  const BlockedLayout bl = BlockedLayout::for_conv(g);
  const std::size_t ximg = batch * bl.image_floats();
  const float* weights = params_.data();
  const float* bias = params_.data() + out_c_ * in_c_ * 9;

  AlignedBuffer& ws = scratch();
  const std::size_t wino_floats =
      winograd ? winograd_scratch_floats(bl, batch, out_c_) : 0;
  ws.ensure(ximg + wino_floats);
  nchw_to_blocked(bl, batch, x.data(), ws.data());
  if (winograd) {
    winograd_conv3x3_forward(bl, batch, out_c_, ws.data(), weights, bias,
                             y.data(), ws.data() + ximg);
  } else {
    direct_conv3x3_forward(bl, batch, out_c_, ws.data(), weights, bias,
                           y.data());
  }
}

void Conv2D::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  const ConvGeom g = geom_for(x.shape());
  const Shape out = output_shape(x.shape());
  if (y.shape() != out) y = Tensor(out);
  const ConvAlgo algo = resolve_conv_algo(algo_, g, out_c_);
  count_dispatch(algo,
                 gemm_flops(out_c_, x.dim(0) * g.col_cols(), g.col_rows()));
  switch (algo) {
    case ConvAlgo::kIm2col:
      forward_lowered(g, x, y, /*quantized=*/false);
      break;
    case ConvAlgo::kInt8:
      forward_lowered(g, x, y, /*quantized=*/true);
      break;
    case ConvAlgo::kDirect:
      col_valid_ = false;
      forward_direct(g, x, y, /*winograd=*/false);
      break;
    case ConvAlgo::kWinograd:
      col_valid_ = false;
      forward_direct(g, x, y, /*winograd=*/true);
      break;
    case ConvAlgo::kAuto:
      DS_CHECK(false, "resolve_conv_algo returned kAuto");
  }
}

// Backward through the 3×3 direct kernels: dW/db from the blocked
// dY × X plane products, dX as a full correlation of blocked dY with the
// 180°-rotated, [C][F]-transposed weights — bitwise-deterministic like the
// forward (whole-image / whole-filter sharding only).
void Conv2D::backward_direct(const ConvGeom& g, const Tensor& x,
                             const Tensor& dy, Tensor& dx) {
  const std::size_t batch = x.dim(0);
  const BlockedLayout xl = BlockedLayout::for_conv(g);
  BlockedLayout dyl = xl;
  dyl.channels = out_c_;
  const std::size_t ximg = batch * xl.image_floats();
  const std::size_t dyimg = batch * dyl.image_floats();
  const std::size_t wfloats = out_c_ * in_c_ * 9;

  const float* weights = params_.data();
  float* dweights = grads_.data();
  float* dbias = grads_.data() + wfloats;

  AlignedBuffer& ws = scratch();
  ws.ensure(ximg + dyimg + wfloats);
  float* xb = ws.data();
  float* dyb = ws.data() + ximg;
  float* wrot = ws.data() + ximg + dyimg;

  nchw_to_blocked(xl, batch, x.data(), xb);
  nchw_to_blocked(dyl, batch, dy.data(), dyb);
  direct_conv3x3_backward_weights(xl, batch, out_c_, xb, dyb, dweights,
                                  dbias);
  // dX[c] = Σ_f dY[f] ⋆ rot180(W[f][c]) — the forward kernel with the
  // roles of filters/channels swapped; overwrites dx completely.
  rotate_conv3x3_weights(out_c_, in_c_, weights, wrot);
  direct_conv3x3_forward(dyl, batch, in_c_, dyb, wrot, nullptr, dx.data());
}

void Conv2D::backward_lowered(const ConvGeom& g, const Tensor& x,
                              const Tensor& dy, Tensor& dx) {
  dx.zero();
  const std::size_t batch = x.dim(0);
  const std::size_t rows = g.col_rows();
  const std::size_t cols = g.col_cols();
  const std::size_t bc = batch * cols;
  col_ws_.ensure(rows * bc);
  out_ws_.ensure(out_c_ * bc);
  dcol_ws_.ensure(rows * bc);

  const float* weights = params_.data();
  float* dweights = grads_.data();  // out_c × rows
  float* dbias = grads_.data() + out_c_ * rows;
  const std::size_t in_plane = in_c_ * g.height * g.width;
  const std::size_t out_plane = out_c_ * cols;

  // Column matrix of the input: forward already lowered exactly this x
  // (backward's x is contractually the matching forward's), so reuse the
  // grow-only scratch instead of re-running im2col — unless a different
  // shape or a non-lowering forward invalidated it.
  const bool reuse =
      col_valid_ && col_batch_ == batch && same_geom(col_geom_, g);
  for (std::size_t n = 0; n < batch; ++n) {
    if (!reuse) {
      im2col(g, x.data() + n * in_plane, col_ws_.data() + n * cols, bc);
    }
    // Batched layout of dY, mirroring the forward lowering.
    const float* dyn = dy.data() + n * out_plane;
    for (std::size_t f = 0; f < out_c_; ++f) {
      std::memcpy(out_ws_.data() + f * bc + n * cols, dyn + f * cols,
                  cols * sizeof(float));
    }
  }
  col_geom_ = g;
  col_batch_ = batch;
  col_valid_ = true;
  // dW += dY_b · col_bᵀ : [out_c × batch·cols] · [batch·cols × rows].
  gemm(Transpose::kNo, Transpose::kYes, out_c_, rows, bc, 1.0f,
       out_ws_.data(), bc, col_ws_.data(), bc, 1.0f, dweights, rows);
  // db += row sums of batched dY.
  add_row_sums(out_ws_.data(), out_c_, bc, dbias);
  // dcol_b = Wᵀ · dY_b : [rows × out_c] · [out_c × batch·cols].
  gemm(Transpose::kYes, Transpose::kNo, rows, bc, out_c_, 1.0f, weights, rows,
       out_ws_.data(), bc, 0.0f, dcol_ws_.data(), bc);
  for (std::size_t n = 0; n < batch; ++n) {
    col2im(g, dcol_ws_.data() + n * cols, bc, dx.data() + n * in_plane);
  }
}

void Conv2D::backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                      Tensor& dx) {
  const ConvGeom g = geom_for(x.shape());
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  const ConvAlgo algo = resolve_conv_algo(algo_, g, out_c_);
  // Winograd trains with direct-kernel gradients (transform-free numerics,
  // see winograd.hpp); int8 quantizes the inference pass only — its
  // backward stays fp32 lowering.
  if (algo == ConvAlgo::kDirect || algo == ConvAlgo::kWinograd) {
    backward_direct(g, x, dy, dx);
  } else {
    backward_lowered(g, x, dy, dx);
  }
}

double Conv2D::flops_per_sample(const Shape& input) const {
  const ConvGeom g = geom_for(input);
  const double fwd = gemm_flops(out_c_, g.col_cols(), g.col_rows());
  // backward: dW GEMM + dX GEMM, each the same size as forward.
  return 3.0 * fwd;
}

}  // namespace ds
