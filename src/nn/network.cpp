#include "nn/network.hpp"

#include <sstream>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace ds {

const char* Network::fwd_trace_name(std::size_t i) const {
  if (fwd_trace_names_.empty()) {
    fwd_trace_names_.reserve(layers_.size());
    for (const auto& l : layers_) {
      fwd_trace_names_.push_back(obs::intern("fwd " + l->name()));
    }
  }
  return fwd_trace_names_[i];
}

const char* Network::bwd_trace_name(std::size_t i) const {
  if (bwd_trace_names_.empty()) {
    bwd_trace_names_.reserve(layers_.size());
    for (const auto& l : layers_) {
      bwd_trace_names_.push_back(obs::intern("bwd " + l->name()));
    }
  }
  return bwd_trace_names_[i];
}

Network::Network(Shape input_shape, PackMode pack_mode)
    : input_shape_(std::move(input_shape)), pack_mode_(pack_mode) {
  DS_CHECK(input_shape_.rank() >= 1, "network input shape must be non-empty");
}

Network& Network::add(LayerPtr layer) {
  DS_CHECK(!finalized_, "cannot add layers after finalize()");
  DS_CHECK(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Shape Network::batched(const Shape& sample_shape, std::size_t batch) const {
  std::vector<std::size_t> dims;
  dims.reserve(sample_shape.rank() + 1);
  dims.push_back(batch);
  for (const std::size_t d : sample_shape.dims()) dims.push_back(d);
  return Shape(dims);
}

void Network::finalize(Rng& rng) {
  DS_CHECK(!finalized_, "finalize() called twice");
  DS_CHECK(!layers_.empty(), "network has no layers");

  std::vector<std::size_t> sizes;
  sizes.reserve(layers_.size());
  for (const auto& l : layers_) sizes.push_back(l->param_count());
  arena_ = ParamArena(sizes, pack_mode_);

  // Validate shape propagation with a nominal batch of 1 and tally flops.
  Shape s = batched(input_shape_, 1);
  flops_per_sample_ = 0.0;
  layer_flops_.resize(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->bind(arena_.layer_params(i), arena_.layer_grads(i));
    layers_[i]->bind_scratch(arena_.layer_scratch(i));
    layer_flops_[i] = layers_[i]->flops_per_sample(s);
    flops_per_sample_ += layer_flops_[i];
    s = layers_[i]->output_shape(s);
  }
  DS_CHECK(s.rank() == 2, "network must end with N×classes logits, got "
                              << s.str() << " — add a Flatten/FC head");

  for (auto& l : layers_) l->init_params(rng);
  acts_.resize(layers_.size());
  grads_cache_.resize(layers_.size());
  finalized_ = true;
}

const Tensor& Network::forward(const Tensor& batch, bool train) {
  DS_CHECK(finalized_, "forward() before finalize()");
  const Tensor* in = &batch;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const obs::SpanGuard span("layer", fwd_trace_name(i));
    layers_[i]->forward(*in, acts_[i], train);
    in = &acts_[i];
  }
  return acts_.back();
}

const Tensor& Network::infer(const Tensor& batch) {
  DS_CHECK(finalized_, "infer() before finalize()");
  DS_CHECK(batch.rank() == input_shape_.rank() + 1,
           "infer() batch rank " << batch.rank() << " != sample rank "
                                 << input_shape_.rank() << " + 1");
  DS_CHECK(batch.dim(0) > 0, "infer() needs a non-empty batch");
  for (std::size_t i = 0; i < input_shape_.rank(); ++i) {
    DS_CHECK(batch.dim(i + 1) == input_shape_.dim(i),
             "infer() batch dim " << i + 1 << " is " << batch.dim(i + 1)
                                  << ", network expects "
                                  << input_shape_.dim(i));
  }
  return forward(batch, /*train=*/false);
}

LossResult Network::forward_backward(const Tensor& batch,
                                     std::span<const std::int32_t> labels) {
  return forward_backward(batch, labels, LayerReadyHook());
}

LossResult Network::forward_backward(const Tensor& batch,
                                     std::span<const std::int32_t> labels,
                                     const LayerReadyHook& on_layer_retired) {
  const Tensor& logits = forward(batch, /*train=*/true);
  const LossResult result = loss_.forward_backward(logits, labels, dlogits_);

  const Tensor* grad = &dlogits_;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& in = (i == 0) ? batch : acts_[i - 1];
    {
      const obs::SpanGuard span("layer", bwd_trace_name(i));
      layers_[i]->backward(in, acts_[i], *grad, grads_cache_[i]);
    }
    grad = &grads_cache_[i];
    // Layer i has retired: its arena gradient is final. The hook runs
    // OUTSIDE the layer span so its own narration (sends, clock advances)
    // is not attributed to the layer's math.
    if (on_layer_retired) on_layer_retired(i);
  }
  return result;
}

LossResult Network::evaluate_batch(const Tensor& batch,
                                   std::span<const std::int32_t> labels) {
  const Tensor& logits = forward(batch, /*train=*/false);
  return loss_.evaluate(logits, labels);
}

std::vector<std::size_t> Network::comm_chunk_sizes() const {
  std::vector<std::size_t> sizes;
  for (const auto& l : layers_) {
    if (l->param_count() > 0) sizes.push_back(l->param_count());
  }
  return sizes;
}

std::string Network::summary() const {
  std::ostringstream os;
  Shape s = batched(input_shape_, 1);
  os << "input " << s.str() << '\n';
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    os << "  " << l->name() << " -> " << s.str();
    if (l->param_count() > 0) os << "  (" << l->param_count() << " params)";
    os << '\n';
  }
  os << "total params: " << param_count() << " ("
     << static_cast<double>(param_bytes()) / (1024.0 * 1024.0) << " MiB), "
     << "flops/sample: " << flops_per_sample_;
  return os.str();
}

}  // namespace ds
