// Binary weight checkpoints.
//
// Format (little-endian):
//   magic "DSCP" | u32 version | u64 layer_count | u64 size per layer |
//   float32 parameter data, layer by layer.
//
// The per-layer geometry is stored and verified on load, so a checkpoint
// written by a packed-arena network loads into a per-layer-arena replica of
// the same architecture (and vice versa), but never into a different model.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace ds {

/// Write all parameters of `net` to `path`. Throws ds::Error on I/O failure.
void save_checkpoint(const Network& net, const std::string& path);

/// Load parameters into `net`. Throws ds::Error if the file is missing,
/// malformed, or describes a different parameter geometry.
void load_checkpoint(Network& net, const std::string& path);

}  // namespace ds
