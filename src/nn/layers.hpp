// Concrete layer types. Enough to express LeNet, (scaled) AlexNet, VGG, and
// GoogLeNet-style inception blocks — the four model families the paper
// evaluates (§4.2).
#pragma once

#include <cstddef>
#include <vector>

#include "comm/quantize.hpp"
#include "nn/layer.hpp"
#include "support/aligned_buffer.hpp"
#include "tensor/conv_algo.hpp"
#include "tensor/im2col.hpp"

namespace ds {

// ---------------------------------------------------------------------------
// Activations (parameter-free, shape-preserving).
// ---------------------------------------------------------------------------

class ReLU final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;
};

class Tanh final : public Layer {
 public:
  std::string name() const override { return "tanh"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;
};

class Sigmoid final : public Layer {
 public:
  std::string name() const override { return "sigmoid"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;
};

// ---------------------------------------------------------------------------
// Shape plumbing.
// ---------------------------------------------------------------------------

/// N×C×H×W -> N×(C·H·W).
class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Shape output_shape(const Shape& input) const override;
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override { (void)input; return 0.0; }
};

/// Inverted dropout: train-time masks scale by 1/(1-p); eval is identity.
class Dropout final : public Layer {
 public:
  explicit Dropout(double drop_prob, std::uint64_t seed = 0x0D120u);
  std::string name() const override;
  Shape output_shape(const Shape& input) const override { return input; }
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

 private:
  double drop_prob_;
  Rng rng_;
  std::vector<float> mask_;
};

// ---------------------------------------------------------------------------
// Learnable layers.
// ---------------------------------------------------------------------------

/// 2-D convolution. Parameters are [out_c × in_c × k × k] filter weights
/// followed by [out_c] biases. Each forward/backward dispatches over one of
/// the ConvAlgo kernels (tensor/conv_algo.hpp): im2col+GEMM lowering,
/// register-blocked direct 3×3, Winograd F(2×2,3×3), or int8 quantized
/// GEMM — resolved per call through layer algo → kernel_config().conv_algo
/// → process default → shape heuristic, with im2col the universal
/// fallback. All paths are bitwise-deterministic under gemm_threads > 1.
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride = 1, std::size_t pad = 0,
         ConvAlgo algo = ConvAlgo::kAuto);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::size_t param_count() const override;
  void init_params(Rng& rng) override;
  void bind_scratch(AlignedBuffer& scratch) override { scratch_ = &scratch; }
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }

  ConvAlgo algo() const { return algo_; }
  void set_algo(ConvAlgo a) { algo_ = a; }
  /// The kernel a call with this input shape would run, after the full
  /// kAuto resolution chain (benches/tests label themselves with it).
  ConvAlgo resolved_algo(const Shape& input) const;

 private:
  ConvGeom geom_for(const Shape& input) const;
  AlignedBuffer& scratch() { return scratch_ ? *scratch_ : own_scratch_; }

  void forward_lowered(const ConvGeom& g, const Tensor& x, Tensor& y,
                       bool quantized);
  void forward_direct(const ConvGeom& g, const Tensor& x, Tensor& y,
                      bool winograd);
  void backward_direct(const ConvGeom& g, const Tensor& x, const Tensor& dy,
                       Tensor& dx);
  void backward_lowered(const ConvGeom& g, const Tensor& x, const Tensor& dy,
                        Tensor& dx);

  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  ConvAlgo algo_ = ConvAlgo::kAuto;
  // Grow-only scratch workspaces (see AlignedBuffer::ensure): the whole
  // batch is lowered into one [rows × batch·cols] column matrix so forward
  // and backward each run a single batched GEMM per layer instead of one
  // per image, and alternating train/eval batch sizes stop reallocating.
  AlignedBuffer col_ws_;   // batched im2col columns
  AlignedBuffer out_ws_;   // batched GEMM output / re-batched dY
  AlignedBuffer dcol_ws_;  // backward column gradient
  // col_ws_ holds the lowering of the forward input with this geometry —
  // lets backward skip re-running im2col (its x is contractually the
  // matching forward's x). Invalidated whenever a forward runs a
  // non-lowering kernel or a different shape.
  ConvGeom col_geom_{};
  std::size_t col_batch_ = 0;
  bool col_valid_ = false;
  // Arena-owned kernel scratch for the blocked/Winograd/rotated-weight
  // buffers (falls back to a private buffer when the layer is used outside
  // a finalized Network).
  AlignedBuffer* scratch_ = nullptr;
  AlignedBuffer own_scratch_;
  // Int8 path: quantized weights / columns, reused across calls.
  Int8Codec::Blob wq_blob_;
  Int8Codec::Blob xq_blob_;
};

/// Max pooling over k×k windows; optional zero-area padding (padded taps are
/// ignored, as in cuDNN's NOT_PROPAGATE_NAN max pooling over -inf pads).
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(std::size_t kernel, std::size_t stride, std::size_t pad = 0);
  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  Shape in_cache_, out_cache_;  // memoized output_shape of the last input
};

/// Average pooling over k×k windows.
class AvgPool2D final : public Layer {
 public:
  AvgPool2D(std::size_t kernel, std::size_t stride);
  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  Shape in_cache_, out_cache_;  // memoized output_shape of the last input
};

/// AlexNet-style local response normalisation across channels:
///   y[c] = x[c] / (k + α/n · Σ_{c'∈window(c)} x[c']²)^β
/// with a window of `size` channels centred on c.
class LocalResponseNorm final : public Layer {
 public:
  explicit LocalResponseNorm(std::size_t size = 5, double alpha = 1e-4,
                             double beta = 0.75, double k = 2.0);
  std::string name() const override;
  Shape output_shape(const Shape& input) const override { return input; }
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

 private:
  std::size_t size_;
  double alpha_;
  double beta_;
  double k_;
  std::vector<float> scale_;  // (k + α/n Σ x²) per element, from forward
};

/// Dense layer: y = x·Wᵀ + b. Parameters are [out × in] weights then [out]
/// biases. Input rank 2 (N×in).
class FullyConnected final : public Layer {
 public:
  FullyConnected(std::size_t in_features, std::size_t out_features);
  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::size_t param_count() const override;
  void init_params(Rng& rng) override;
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

 private:
  std::size_t in_;
  std::size_t out_;
};

/// ResNet-style residual block: y = ReLU(F(x) + shortcut(x)) where F is
/// conv3×3 → ReLU → conv3×3 and the shortcut is identity (same channels,
/// stride 1) or a 1×1 projection conv (channel/stride change). The paper's
/// introduction names 152-layer ResNets as the workloads driving the need
/// for scalable training.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                std::size_t stride = 1);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::size_t param_count() const override;
  void bind(std::span<float> params, std::span<float> grads) override;
  void bind_scratch(AlignedBuffer& scratch) override;
  void init_params(Rng& rng) override;
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

 private:
  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t stride_;
  Conv2D conv1_;
  ReLU relu1_;
  Conv2D conv2_;
  std::unique_ptr<Conv2D> projection_;  // null for identity shortcuts
  // Forward activations needed by backward.
  Tensor act1_, act2_, act3_, shortcut_;
  Tensor pre_relu_;
  // Backward scratch.
  Tensor d_pre_, d_act2_, d_act1_, d_branch_, d_short_;
};

/// GoogLeNet-style inception block: four parallel branches
/// (1×1 | 1×1→3×3 | 1×1→5×5 | 3×3 maxpool→1×1) concatenated along channels.
/// Implemented as a composite layer so Network stays a sequential container.
class InceptionBlock final : public Layer {
 public:
  InceptionBlock(std::size_t in_channels, std::size_t c1x1,
                 std::size_t c3x3_reduce, std::size_t c3x3,
                 std::size_t c5x5_reduce, std::size_t c5x5,
                 std::size_t pool_proj);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::size_t param_count() const override;
  void bind(std::span<float> params, std::span<float> grads) override;
  void bind_scratch(AlignedBuffer& scratch) override;
  void init_params(Rng& rng) override;
  void forward(const Tensor& x, Tensor& y, bool train) override;
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                Tensor& dx) override;
  double flops_per_sample(const Shape& input) const override;

  std::size_t out_channels() const;

 private:
  struct Branch {
    std::vector<LayerPtr> stages;
    std::vector<Tensor> acts;  // forward activations per stage
  };

  void run_branch_forward(Branch& b, const Tensor& x, bool train);

  std::size_t in_c_;
  std::size_t out_1x1_, out_3x3_, out_5x5_, out_pool_;
  std::vector<Branch> branches_;
};

}  // namespace ds
