#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace ds {
namespace {

// Shared softmax pass; when dlogits != nullptr the gradient is emitted.
LossResult softmax_xent(const Tensor& logits,
                        std::span<const std::int32_t> labels,
                        Tensor* dlogits) {
  DS_CHECK(logits.rank() == 2, "loss expects N×C logits");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  DS_CHECK(labels.size() == batch,
           "labels " << labels.size() << " vs batch " << batch);
  if (dlogits != nullptr && dlogits->shape() != logits.shape()) {
    *dlogits = Tensor(logits.shape());
  }

  LossResult result;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    const std::int32_t label = labels[n];
    DS_CHECK(label >= 0 && static_cast<std::size_t>(label) < classes,
             "label " << label << " out of " << classes << " classes");

    float max_logit = row[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > max_logit) {
        max_logit = row[c];
        argmax = c;
      }
    }
    if (argmax == static_cast<std::size_t>(label)) ++result.correct;

    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c] - max_logit));
    }
    const double log_denom = std::log(denom);
    result.loss +=
        -(static_cast<double>(row[label] - max_logit) - log_denom);

    if (dlogits != nullptr) {
      float* grad = dlogits->data() + n * classes;
      for (std::size_t c = 0; c < classes; ++c) {
        const double p =
            std::exp(static_cast<double>(row[c] - max_logit)) / denom;
        grad[c] = static_cast<float>(p) * inv_batch;
      }
      grad[label] -= inv_batch;
    }
  }
  result.loss /= static_cast<double>(batch);
  return result;
}

}  // namespace

LossResult SoftmaxCrossEntropy::forward_backward(
    const Tensor& logits, std::span<const std::int32_t> labels,
    Tensor& dlogits) const {
  return softmax_xent(logits, labels, &dlogits);
}

LossResult SoftmaxCrossEntropy::evaluate(
    const Tensor& logits, std::span<const std::int32_t> labels) const {
  return softmax_xent(logits, labels, nullptr);
}

}  // namespace ds
