// Softmax + cross-entropy loss head, fused for numerical stability
// (log-sum-exp trick); gradient w.r.t. logits is (softmax − onehot)/batch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace ds {

struct LossResult {
  double loss = 0.0;        // mean cross-entropy over the batch
  std::size_t correct = 0;  // argmax matches label
};

class SoftmaxCrossEntropy {
 public:
  /// logits: N×C. labels: N entries in [0, C).
  /// Fills dlogits (N×C) with the mean-reduced gradient.
  LossResult forward_backward(const Tensor& logits,
                              std::span<const std::int32_t> labels,
                              Tensor& dlogits) const;

  /// Evaluation-only path (no gradient).
  LossResult evaluate(const Tensor& logits,
                      std::span<const std::int32_t> labels) const;
};

}  // namespace ds
