// Parameter storage for a Network.
//
// The paper (§5.2, "Single-Layer Communication") observes that mainstream
// frameworks allocate each layer's weights separately and send one message
// per layer, paying the network latency α once per layer; packing all layers
// into one contiguous allocation permits a single message per collective and
// contiguous memory access. ParamArena implements both layouts behind one
// interface so the Figure-10 ablation can flip between them:
//
//   PackMode::kPacked   — one AlignedBuffer for all layers (ours)
//   PackMode::kPerLayer — one AlignedBuffer per layer (baseline frameworks)
//
// Either way, each layer gets a (weights, gradients) span pair; in packed
// mode full_params()/full_grads() expose the whole model as a single span,
// which is what the communication layer transfers in one message.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/aligned_buffer.hpp"
#include "tensor/direct_conv.hpp"

namespace ds {

enum class PackMode { kPacked, kPerLayer };

// ---------------------------------------------------------------------------
// NCHW ↔ blocked layout transforms (the enabling refactor for the direct /
// Winograd convolution kernels — see tensor/direct_conv.hpp for the layout).
//
// Contract: nchw_to_blocked writes EVERY float of the destination — the
// real values, the zero pad border, the lane slack, and the slack row — so
// a grow-only arena scratch never leaks stale data into a kernel, and the
// kernels never branch at an edge. blocked_to_nchw is its exact inverse
// over the interior. Both stream row-by-row in address order (hardware-
// prefetch friendly) with explicit software prefetch of the next source
// row.
// ---------------------------------------------------------------------------

/// Pack `batch` NCHW images (contiguous, channels × height × width each)
/// into consecutive BlockedLayout images at `blocked`.
void nchw_to_blocked(const BlockedLayout& layout, std::size_t batch,
                     const float* nchw, float* blocked);

/// Unpack the interior of `batch` BlockedLayout images back to NCHW.
void blocked_to_nchw(const BlockedLayout& layout, std::size_t batch,
                     const float* blocked, float* nchw);

class ParamArena {
 public:
  ParamArena() = default;

  /// Allocate storage for layers with the given parameter counts.
  ParamArena(const std::vector<std::size_t>& layer_sizes, PackMode mode);

  PackMode mode() const { return mode_; }
  std::size_t layer_count() const { return sizes_.size(); }
  std::size_t total_params() const { return total_; }
  const std::vector<std::size_t>& layer_sizes() const { return sizes_; }

  std::span<float> layer_params(std::size_t layer);
  std::span<float> layer_grads(std::size_t layer);
  std::span<const float> layer_params(std::size_t layer) const;
  std::span<const float> layer_grads(std::size_t layer) const;

  /// Whole-model spans; only valid in packed mode.
  std::span<float> full_params();
  std::span<float> full_grads();
  std::span<const float> full_params() const;
  std::span<const float> full_grads() const;

  /// Grow-only per-layer kernel scratch (blocked activations, Winograd
  /// tile buffers, rotated weights). Deliberately OUTSIDE the packed
  /// params/grads allocations: scratch is never communicated, so it must
  /// not dilute the single-message contiguity contract. Buffers start
  /// empty and grow on first use (AlignedBuffer::ensure).
  AlignedBuffer& layer_scratch(std::size_t layer);

  /// Zero every gradient.
  void zero_grads();

  /// Copy all parameter values from another arena of identical geometry
  /// (works across pack modes).
  void copy_params_from(const ParamArena& other);

  /// Copy all gradient values from another arena of identical geometry.
  void copy_grads_from(const ParamArena& other);

 private:
  PackMode mode_ = PackMode::kPacked;
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> offsets_;  // packed mode
  std::size_t total_ = 0;
  AlignedBuffer packed_params_;
  AlignedBuffer packed_grads_;
  std::vector<AlignedBuffer> per_layer_params_;
  std::vector<AlignedBuffer> per_layer_grads_;
  std::vector<AlignedBuffer> scratch_;  // per-layer kernel scratch
};

}  // namespace ds
