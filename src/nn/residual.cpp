#include <sstream>

#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace ds {

ResidualBlock::ResidualBlock(std::size_t in_channels,
                             std::size_t out_channels, std::size_t stride)
    : in_c_(in_channels),
      out_c_(out_channels),
      stride_(stride),
      conv1_(in_channels, out_channels, 3, stride, 1),
      conv2_(out_channels, out_channels, 3, 1, 1) {
  if (in_c_ != out_c_ || stride_ != 1) {
    projection_ =
        std::make_unique<Conv2D>(in_channels, out_channels, 1, stride, 0);
  }
}

std::string ResidualBlock::name() const {
  std::ostringstream os;
  os << "residual " << in_c_ << "->" << out_c_ << " s" << stride_
     << (projection_ ? " (projected)" : " (identity)");
  return os.str();
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  return conv1_.output_shape(input);
}

std::size_t ResidualBlock::param_count() const {
  return conv1_.param_count() + conv2_.param_count() +
         (projection_ ? projection_->param_count() : 0);
}

void ResidualBlock::bind(std::span<float> params, std::span<float> grads) {
  DS_CHECK(params.size() == param_count(), "residual bind size mismatch");
  std::size_t offset = 0;
  const auto slice = [&](Layer& layer) {
    const std::size_t n = layer.param_count();
    layer.bind(params.subspan(offset, n), grads.subspan(offset, n));
    offset += n;
  };
  slice(conv1_);
  slice(conv2_);
  if (projection_) slice(*projection_);
  params_ = params;
  grads_ = grads;
}

void ResidualBlock::bind_scratch(AlignedBuffer& scratch) {
  // One shared buffer: each conv call partitions it afresh, and no two
  // inner convs are ever mid-call simultaneously.
  conv1_.bind_scratch(scratch);
  conv2_.bind_scratch(scratch);
  if (projection_) projection_->bind_scratch(scratch);
}

void ResidualBlock::init_params(Rng& rng) {
  conv1_.init_params(rng);
  conv2_.init_params(rng);
  if (projection_) projection_->init_params(rng);
}

void ResidualBlock::forward(const Tensor& x, Tensor& y, bool train) {
  // Branch: conv1 → ReLU → conv2.
  conv1_.forward(x, act1_, train);
  relu1_.forward(act1_, act2_, train);
  conv2_.forward(act2_, act3_, train);
  // Shortcut.
  if (projection_) {
    projection_->forward(x, shortcut_, train);
  } else {
    if (shortcut_.shape() != x.shape()) shortcut_ = Tensor(x.shape());
    copy(x.span(), shortcut_.span());
  }
  // y = ReLU(branch + shortcut); keep the pre-activation for backward.
  if (pre_relu_.shape() != act3_.shape()) pre_relu_ = Tensor(act3_.shape());
  add(act3_.span(), shortcut_.span(), pre_relu_.span());
  if (y.shape() != pre_relu_.shape()) y = Tensor(pre_relu_.shape());
  const std::size_t n = pre_relu_.numel();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = pre_relu_[i] > 0.0f ? pre_relu_[i] : 0.0f;
  }
}

void ResidualBlock::backward(const Tensor& x, const Tensor& /*y*/,
                             const Tensor& dy, Tensor& dx) {
  DS_CHECK(pre_relu_.numel() == dy.numel(), "residual backward before forward");
  // Through the output ReLU.
  if (d_pre_.shape() != dy.shape()) d_pre_ = Tensor(dy.shape());
  const std::size_t n = dy.numel();
  for (std::size_t i = 0; i < n; ++i) {
    d_pre_[i] = pre_relu_[i] > 0.0f ? dy[i] : 0.0f;
  }
  // Branch path: conv2 → ReLU → conv1.
  conv2_.backward(act2_, act3_, d_pre_, d_act2_);
  relu1_.backward(act1_, act2_, d_act2_, d_act1_);
  conv1_.backward(x, act1_, d_act1_, d_branch_);
  // Shortcut path.
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  if (projection_) {
    projection_->backward(x, shortcut_, d_pre_, d_short_);
    add(d_branch_.span(), d_short_.span(), dx.span());
  } else {
    add(d_branch_.span(), d_pre_.span(), dx.span());
  }
}

double ResidualBlock::flops_per_sample(const Shape& input) const {
  double total = conv1_.flops_per_sample(input);
  const Shape mid = conv1_.output_shape(input);
  total += relu1_.flops_per_sample(mid);
  total += conv2_.flops_per_sample(mid);
  if (projection_) total += projection_->flops_per_sample(input);
  // Elementwise add + final ReLU.
  double elems = 1.0;
  for (std::size_t i = 1; i < mid.rank(); ++i) {
    elems *= static_cast<double>(mid.dim(i));
  }
  return total + 3.0 * elems;
}

}  // namespace ds
