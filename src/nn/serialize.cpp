#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "support/error.hpp"

namespace ds {
namespace {

constexpr char kMagic[4] = {'D', 'S', 'C', 'P'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const char* what) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  DS_CHECK(in.good(), "checkpoint truncated while reading " << what);
  return value;
}

}  // namespace

void save_checkpoint(const Network& net, const std::string& path) {
  DS_CHECK(net.finalized(), "cannot checkpoint an unfinalised network");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DS_CHECK(out.is_open(), "cannot open checkpoint for writing: " << path);

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const ParamArena& arena = net.arena();
  write_pod(out, static_cast<std::uint64_t>(arena.layer_count()));
  for (std::size_t l = 0; l < arena.layer_count(); ++l) {
    write_pod(out, static_cast<std::uint64_t>(arena.layer_sizes()[l]));
  }
  for (std::size_t l = 0; l < arena.layer_count(); ++l) {
    const auto params = arena.layer_params(l);
    out.write(reinterpret_cast<const char*>(params.data()),
              static_cast<std::streamsize>(params.size() * sizeof(float)));
  }
  DS_CHECK(out.good(), "write failure on checkpoint: " << path);
}

void load_checkpoint(Network& net, const std::string& path) {
  DS_CHECK(net.finalized(), "cannot load into an unfinalised network");
  std::ifstream in(path, std::ios::binary);
  DS_CHECK(in.is_open(), "cannot open checkpoint: " << path);

  char magic[4];
  in.read(magic, sizeof(magic));
  DS_CHECK(in.good() && std::memcmp(magic, kMagic, 4) == 0,
           "not a deepscale checkpoint: " << path);
  const auto version = read_pod<std::uint32_t>(in, "version");
  DS_CHECK(version == kVersion, "unsupported checkpoint version " << version);

  ParamArena& arena = net.arena();
  const auto layer_count = read_pod<std::uint64_t>(in, "layer count");
  DS_CHECK(layer_count == arena.layer_count(),
           "checkpoint has " << layer_count << " layers, network has "
                             << arena.layer_count());
  for (std::size_t l = 0; l < arena.layer_count(); ++l) {
    const auto size = read_pod<std::uint64_t>(in, "layer size");
    DS_CHECK(size == arena.layer_sizes()[l],
             "layer " << l << " size mismatch: checkpoint " << size
                      << " vs network " << arena.layer_sizes()[l]);
  }
  for (std::size_t l = 0; l < arena.layer_count(); ++l) {
    auto params = arena.layer_params(l);
    in.read(reinterpret_cast<char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
    DS_CHECK(in.good() || (in.eof() && l + 1 == arena.layer_count() &&
                           static_cast<std::size_t>(in.gcount()) ==
                               params.size() * sizeof(float)),
             "checkpoint truncated in layer " << l);
  }
}

}  // namespace ds
