// Model zoo: scaled-down versions of the four networks the paper evaluates
// (LeNet for MNIST, AlexNet for Cifar, GoogLeNet and VGG for ImageNet,
// §4.2), sized so a single CPU core can train them in seconds, plus
// paper-scale metadata (full-size weight bytes and flops) consumed by the
// KNL and weak-scaling performance models where the *real* model sizes are
// what matters.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "nn/network.hpp"

namespace ds {

/// 1×28×28 input, 10 classes — LeNet-style (paper Figure 3).
std::unique_ptr<Network> make_lenet_s(Rng& rng,
                                      PackMode pack = PackMode::kPacked);

/// 3×32×32 input, 10 classes — AlexNet-style conv/pool/FC stack with dropout.
std::unique_ptr<Network> make_alexnet_s(Rng& rng,
                                        PackMode pack = PackMode::kPacked);

/// 3×32×32 input, 10 classes — VGG-style doubled 3×3 conv blocks.
std::unique_ptr<Network> make_vgg_s(Rng& rng,
                                    PackMode pack = PackMode::kPacked);

/// 3×32×32 input, 10 classes — GoogLeNet-style with two inception blocks
/// and a global-average-pool head.
std::unique_ptr<Network> make_googlenet_s(Rng& rng,
                                          PackMode pack = PackMode::kPacked);

/// 3×32×32 input, 10 classes — ResNet-style with three residual stages
/// (the deep-network workload the paper's introduction motivates).
std::unique_ptr<Network> make_resnet_s(Rng& rng,
                                       PackMode pack = PackMode::kPacked);

/// Tiny MLP on 1×8×8 input — unit-test workhorse.
std::unique_ptr<Network> make_tiny_mlp(Rng& rng,
                                       PackMode pack = PackMode::kPacked);

// ---------------------------------------------------------------------------
// Paper-scale model metadata (full-size networks on the paper's datasets).
// Used by the analytic performance models (cluster_sim, knl) where the real
// weight volume drives communication cost. Values from the paper (§6.1.2:
// AlexNet 249 MB, VGG-19 575 MB) and standard architecture parameter counts.
// ---------------------------------------------------------------------------

struct PaperModelInfo {
  std::string name;
  double weight_bytes = 0.0;       // full fp32 model size
  double flops_per_sample = 0.0;   // forward+backward per training sample
  std::size_t comm_layers = 0;     // learnable tensors a per-layer schedule
                                   // sends as separate messages
};

PaperModelInfo paper_lenet();
PaperModelInfo paper_alexnet();
PaperModelInfo paper_googlenet();
PaperModelInfo paper_vgg19();

}  // namespace ds
