#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/layers.hpp"

namespace ds {

LocalResponseNorm::LocalResponseNorm(std::size_t size, double alpha,
                                     double beta, double k)
    : size_(size), alpha_(alpha), beta_(beta), k_(k) {
  DS_CHECK(size_ >= 1, "LRN window must be at least 1");
  DS_CHECK(size_ % 2 == 1, "LRN window must be odd (centred)");
}

std::string LocalResponseNorm::name() const {
  std::ostringstream os;
  os << "lrn n=" << size_ << " a=" << alpha_ << " b=" << beta_;
  return os.str();
}

void LocalResponseNorm::forward(const Tensor& x, Tensor& y, bool /*train*/) {
  DS_CHECK(x.rank() == 4, "lrn input must be NCHW");
  if (y.shape() != x.shape()) y = Tensor(x.shape());
  const std::size_t batch = x.dim(0), channels = x.dim(1);
  const std::size_t hw = x.dim(2) * x.dim(3);
  scale_.resize(x.numel());
  const long half = static_cast<long>(size_ / 2);
  const float coeff = static_cast<float>(alpha_ / static_cast<double>(size_));

  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x.data() + n * channels * hw;
    float* yn = y.data() + n * channels * hw;
    float* sn = scale_.data() + n * channels * hw;
    for (std::size_t c = 0; c < channels; ++c) {
      const long lo = std::max<long>(0, static_cast<long>(c) - half);
      const long hi = std::min<long>(static_cast<long>(channels) - 1,
                                     static_cast<long>(c) + half);
      for (std::size_t i = 0; i < hw; ++i) {
        float sumsq = 0.0f;
        for (long cc = lo; cc <= hi; ++cc) {
          const float v = xn[static_cast<std::size_t>(cc) * hw + i];
          sumsq += v * v;
        }
        const float s = static_cast<float>(k_) + coeff * sumsq;
        sn[c * hw + i] = s;
        yn[c * hw + i] =
            xn[c * hw + i] * std::pow(s, static_cast<float>(-beta_));
      }
    }
  }
}

void LocalResponseNorm::backward(const Tensor& x, const Tensor& y,
                                 const Tensor& dy, Tensor& dx) {
  DS_CHECK(scale_.size() == x.numel(), "lrn backward before forward");
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  const std::size_t batch = x.dim(0), channels = x.dim(1);
  const std::size_t hw = x.dim(2) * x.dim(3);
  const long half = static_cast<long>(size_ / 2);
  const float coeff = static_cast<float>(alpha_ / static_cast<double>(size_));
  const float b = static_cast<float>(beta_);

  // dL/dx[c] = dy[c]·s[c]^{-β} − 2·(α/n)·β·x[c]·Σ_{c'∋c} dy[c']·y[c']/s[c']
  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t base = n * channels * hw;
    const float* xn = x.data() + base;
    const float* yn = y.data() + base;
    const float* gn = dy.data() + base;
    const float* sn = scale_.data() + base;
    float* on = dx.data() + base;
    for (std::size_t c = 0; c < channels; ++c) {
      const long lo = std::max<long>(0, static_cast<long>(c) - half);
      const long hi = std::min<long>(static_cast<long>(channels) - 1,
                                     static_cast<long>(c) + half);
      for (std::size_t i = 0; i < hw; ++i) {
        const std::size_t idx = c * hw + i;
        float cross = 0.0f;
        // Channels whose window CONTAINS c (symmetric window ⇒ same range).
        for (long cc = lo; cc <= hi; ++cc) {
          const std::size_t j = static_cast<std::size_t>(cc) * hw + i;
          cross += gn[j] * yn[j] / sn[j];
        }
        on[idx] = gn[idx] * std::pow(sn[idx], -b) -
                  2.0f * coeff * b * xn[idx] * cross;
      }
    }
  }
}

double LocalResponseNorm::flops_per_sample(const Shape& input) const {
  double elems = 1.0;
  for (std::size_t i = 1; i < input.rank(); ++i) {
    elems *= static_cast<double>(input.dim(i));
  }
  // window sum-of-squares + pow, forward and backward.
  return elems * (2.0 * static_cast<double>(size_) + 20.0) * 2.0;
}

}  // namespace ds
