#include "nn/models.hpp"

#include "nn/layers.hpp"

namespace ds {

std::unique_ptr<Network> make_lenet_s(Rng& rng, PackMode pack) {
  auto net = std::make_unique<Network>(Shape{1, 28, 28}, pack);
  net->add(std::make_unique<Conv2D>(1, 6, 5));       // 24×24
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));       // 12×12
  net->add(std::make_unique<Conv2D>(6, 12, 5));      // 8×8
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));       // 4×4
  net->add(std::make_unique<Flatten>());             // 192
  net->add(std::make_unique<FullyConnected>(192, 64));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<FullyConnected>(64, 10));
  net->finalize(rng);
  return net;
}

std::unique_ptr<Network> make_alexnet_s(Rng& rng, PackMode pack) {
  auto net = std::make_unique<Network>(Shape{3, 32, 32}, pack);
  net->add(std::make_unique<Conv2D>(3, 16, 3, 1, 1));   // 32×32
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<LocalResponseNorm>());      // AlexNet's LRN
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 16×16
  net->add(std::make_unique<Conv2D>(16, 32, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 8×8
  net->add(std::make_unique<Conv2D>(32, 32, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 4×4
  net->add(std::make_unique<Flatten>());                // 512
  net->add(std::make_unique<FullyConnected>(512, 128));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Dropout>(0.5));
  net->add(std::make_unique<FullyConnected>(128, 10));
  net->finalize(rng);
  return net;
}

std::unique_ptr<Network> make_vgg_s(Rng& rng, PackMode pack) {
  auto net = std::make_unique<Network>(Shape{3, 32, 32}, pack);
  net->add(std::make_unique<Conv2D>(3, 16, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Conv2D>(16, 16, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 16×16
  net->add(std::make_unique<Conv2D>(16, 32, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Conv2D>(32, 32, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 8×8
  net->add(std::make_unique<Conv2D>(32, 64, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Conv2D>(64, 64, 3, 1, 1));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 4×4
  net->add(std::make_unique<Flatten>());                // 1024
  net->add(std::make_unique<FullyConnected>(1024, 128));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Dropout>(0.5));
  net->add(std::make_unique<FullyConnected>(128, 10));
  net->finalize(rng);
  return net;
}

std::unique_ptr<Network> make_googlenet_s(Rng& rng, PackMode pack) {
  auto net = std::make_unique<Network>(Shape{3, 32, 32}, pack);
  net->add(std::make_unique<Conv2D>(3, 16, 3, 1, 1));   // 32×32
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 16×16
  net->add(std::make_unique<InceptionBlock>(16, 8, 8, 16, 4, 8, 8));   // 40ch
  net->add(std::make_unique<MaxPool2D>(2, 2));          // 8×8
  net->add(std::make_unique<InceptionBlock>(40, 16, 16, 32, 8, 16, 16));  // 80ch
  net->add(std::make_unique<AvgPool2D>(8, 8));          // 1×1 (global avg)
  net->add(std::make_unique<Flatten>());                // 80
  net->add(std::make_unique<FullyConnected>(80, 10));
  net->finalize(rng);
  return net;
}

std::unique_ptr<Network> make_resnet_s(Rng& rng, PackMode pack) {
  auto net = std::make_unique<Network>(Shape{3, 32, 32}, pack);
  net->add(std::make_unique<Conv2D>(3, 16, 3, 1, 1));    // 32×32 stem
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<ResidualBlock>(16, 16));     // identity
  net->add(std::make_unique<ResidualBlock>(16, 32, 2));  // 16×16, projected
  net->add(std::make_unique<ResidualBlock>(32, 32));
  net->add(std::make_unique<ResidualBlock>(32, 64, 2));  // 8×8, projected
  net->add(std::make_unique<AvgPool2D>(8, 8));           // global average
  net->add(std::make_unique<Flatten>());                 // 64
  net->add(std::make_unique<FullyConnected>(64, 10));
  net->finalize(rng);
  return net;
}

std::unique_ptr<Network> make_tiny_mlp(Rng& rng, PackMode pack) {
  auto net = std::make_unique<Network>(Shape{1, 8, 8}, pack);
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<FullyConnected>(64, 32));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<FullyConnected>(32, 4));
  net->finalize(rng);
  return net;
}

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

PaperModelInfo paper_lenet() {
  // ~431k params; forward ≈ 2.3 MFLOP, fwd+bwd costed at 3×.
  return {"LeNet", 431000.0 * 4.0, 7e6, 8};
}

PaperModelInfo paper_alexnet() {
  // Paper §6.1.1: AlexNet weights are 249 MB. Forward ≈ 0.7 GFLOP at 32×32
  // Cifar crops in the paper's configuration.
  return {"AlexNet", 249.0 * kMiB, 2.2e9, 16};
}

PaperModelInfo paper_googlenet() {
  // GoogLeNet: ~6.8M params (27 MB), forward ≈ 1.6 GFLOP at 224×224.
  return {"GoogLeNet", 6.8e6 * 4.0, 4.8e9, 59};
}

PaperModelInfo paper_vgg19() {
  // Paper §6.1.2: VGG-19 model is 575 MB; forward ≈ 19.6 GFLOP at 224×224.
  return {"VGG-19", 575.0 * kMiB, 5.9e10, 19};
}

}  // namespace ds
