// Mini-batch sampling and dataset partitioning across workers.
//
// The paper's algorithms differ in where data lives: GPU workers fetch
// random batches from host memory (Algorithms 1–3) while each KNL node holds
// a full local copy (Algorithm 4, weak scaling). shard()/replicate() model
// both regimes.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace ds {

/// Draws uniform random mini-batches ("randomly picks b samples",
/// Algorithm 1 line 8). Deterministic given its seed.
class BatchSampler {
 public:
  BatchSampler(const Dataset& dataset, std::size_t batch_size,
               std::uint64_t seed);

  /// Fill `images` (B×C×H×W, allocated on first use) and `labels` with a
  /// fresh random batch.
  void next(Tensor& images, std::vector<std::int32_t>& labels);

  std::size_t batch_size() const { return batch_size_; }

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  Rng rng_;
};

/// Copy the samples at `indices` into a batch tensor + label vector.
void gather_batch(const Dataset& dataset,
                  const std::vector<std::size_t>& indices, Tensor& images,
                  std::vector<std::int32_t>& labels);

/// Split a dataset into `parts` disjoint contiguous shards (data
/// parallelism: each worker sees 1/P of the data).
std::vector<Dataset> shard(const Dataset& dataset, std::size_t parts);

/// `parts` full copies (weak scaling: "each node processes one copy of the
/// dataset", §7.1).
std::vector<Dataset> replicate(const Dataset& dataset, std::size_t parts);

}  // namespace ds
