// In-memory labelled image datasets plus deterministic synthetic generators.
//
// The paper trains on MNIST / Cifar / ImageNet (Table 1). Those corpora are
// not available offline, so experiments use synthetic stand-ins with matching
// tensor shapes and class counts: each class is a smooth random "template"
// pattern (a mixture of Gaussian blobs per channel) and each sample is
// template + per-pixel Gaussian noise. This gives real learning dynamics —
// accuracy climbs with SGD iterations at a rate depending on the noise level —
// which is exactly what the accuracy-vs-time figures measure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace ds {

/// A labelled dataset; images are N×C×H×W.
struct Dataset {
  Tensor images;
  std::vector<std::int32_t> labels;

  std::size_t size() const { return labels.size(); }
  std::size_t sample_numel() const {
    return images.dim(1) * images.dim(2) * images.dim(3);
  }
  Shape sample_shape() const {
    return Shape{images.dim(1), images.dim(2), images.dim(3)};
  }

  /// Restrict to the first n samples (used to carve fast test subsets).
  Dataset prefix(std::size_t n) const;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Parameters of the synthetic generator.
struct SyntheticSpec {
  std::size_t classes = 10;
  std::size_t train_count = 2048;
  std::size_t test_count = 512;
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  double noise = 1.0;      // per-pixel Gaussian noise stddev
  double signal = 1.0;     // template amplitude multiplier
  std::size_t blobs = 6;   // Gaussian blobs per class template
  std::uint64_t seed = 42;
};

/// Deterministic synthetic dataset: identical spec ⇒ identical bits.
TrainTest make_synthetic(const SyntheticSpec& spec);

/// Standardise in place to zero mean / unit variance over the whole tensor
/// (paper Algorithm 1 line 1). Returns {mean, stddev} that were removed.
std::pair<double, double> normalize(Dataset& dataset);

/// Apply a precomputed (mean, stddev) — used so the test set is normalised
/// with the training statistics.
void normalize_with(Dataset& dataset, double mean, double stddev);

// Convenience presets with the paper's dataset shapes (Table 1), scaled
// counts, and normalisation applied (train stats reused for test).
TrainTest mnist_like(std::uint64_t seed = 42, std::size_t train_count = 2048,
                     std::size_t test_count = 512);
TrainTest cifar_like(std::uint64_t seed = 42, std::size_t train_count = 2048,
                     std::size_t test_count = 512);
/// 3×32×32 but 100 classes — a tractable stand-in for ImageNet's 1000-way
/// classification (class count is what stresses the softmax/FC head).
TrainTest imagenet_like(std::uint64_t seed = 42,
                        std::size_t train_count = 4096,
                        std::size_t test_count = 1024);

}  // namespace ds
