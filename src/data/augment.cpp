#include "data/augment.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"

namespace ds {

Augmenter::Augmenter(AugmentConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void Augmenter::apply(Tensor& batch) {
  DS_CHECK(batch.rank() == 4, "augmenter expects an NCHW batch");
  const std::size_t n = batch.dim(0);
  const std::size_t c = batch.dim(1);
  const std::size_t h = batch.dim(2);
  const std::size_t w = batch.dim(3);
  const std::size_t image = c * h * w;

  for (std::size_t i = 0; i < n; ++i) {
    float* img = batch.data() + i * image;
    if (config_.crop_pad > 0) {
      // Offsets in the padded [0, 2·pad] range; pad==offset means identity.
      const std::size_t oy = rng_.below(2 * config_.crop_pad + 1);
      const std::size_t ox = rng_.below(2 * config_.crop_pad + 1);
      crop_image(img, c, h, w, oy, ox);
    }
    if (config_.mirror && rng_.uniform() < 0.5) {
      mirror_image(img, c, h, w);
    }
  }
}

void Augmenter::mirror_image(float* image, std::size_t channels,
                             std::size_t height, std::size_t width) {
  for (std::size_t ch = 0; ch < channels; ++ch) {
    float* plane = image + ch * height * width;
    for (std::size_t y = 0; y < height; ++y) {
      float* row = plane + y * width;
      std::reverse(row, row + width);
    }
  }
}

void Augmenter::crop_image(float* image, std::size_t channels,
                           std::size_t height, std::size_t width,
                           std::size_t offset_y, std::size_t offset_x) {
  const std::size_t pad = config_.crop_pad;
  scratch_.resize(channels * height * width);
  std::memcpy(scratch_.data(), image,
              scratch_.size() * sizeof(float));
  // Reading the crop window from the conceptual zero-padded image: source
  // coordinate = destination + offset − pad; out of range reads zero.
  for (std::size_t ch = 0; ch < channels; ++ch) {
    const float* src = scratch_.data() + ch * height * width;
    float* dst = image + ch * height * width;
    for (std::size_t y = 0; y < height; ++y) {
      const long sy = static_cast<long>(y + offset_y) - static_cast<long>(pad);
      for (std::size_t x = 0; x < width; ++x) {
        const long sx =
            static_cast<long>(x + offset_x) - static_cast<long>(pad);
        const bool inside = sy >= 0 && sy < static_cast<long>(height) &&
                            sx >= 0 && sx < static_cast<long>(width);
        dst[y * width + x] =
            inside ? src[static_cast<std::size_t>(sy) * width +
                         static_cast<std::size_t>(sx)]
                   : 0.0f;
      }
    }
  }
}

}  // namespace ds
