#include "data/dataset.hpp"

#include <cmath>
#include <cstring>

#include "support/error.hpp"

namespace ds {
namespace {

/// One class template: `blobs` Gaussian bumps per channel with random
/// centres, widths, and signed amplitudes.
std::vector<float> make_template(const SyntheticSpec& spec, Rng& rng) {
  const std::size_t plane = spec.height * spec.width;
  std::vector<float> tmpl(spec.channels * plane, 0.0f);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    float* out = tmpl.data() + c * plane;
    for (std::size_t b = 0; b < spec.blobs; ++b) {
      const double cy = rng.uniform(0.0, static_cast<double>(spec.height));
      const double cx = rng.uniform(0.0, static_cast<double>(spec.width));
      const double sigma =
          rng.uniform(0.08, 0.25) * static_cast<double>(spec.height);
      const double amp = (rng.uniform() < 0.5 ? -1.0 : 1.0) *
                         rng.uniform(1.0, 2.0) * spec.signal;
      const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
      for (std::size_t y = 0; y < spec.height; ++y) {
        const double dy = static_cast<double>(y) - cy;
        for (std::size_t x = 0; x < spec.width; ++x) {
          const double dx = static_cast<double>(x) - cx;
          out[y * spec.width + x] += static_cast<float>(
              amp * std::exp(-(dx * dx + dy * dy) * inv2s2));
        }
      }
    }
  }
  return tmpl;
}

Dataset generate_split(const SyntheticSpec& spec,
                       const std::vector<std::vector<float>>& templates,
                       std::size_t count, Rng& rng) {
  Dataset d;
  d.images = Tensor({count, spec.channels, spec.height, spec.width});
  d.labels.resize(count);
  const std::size_t sample = spec.channels * spec.height * spec.width;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label = rng.below(spec.classes);
    d.labels[i] = static_cast<std::int32_t>(label);
    const std::vector<float>& tmpl = templates[label];
    float* out = d.images.data() + i * sample;
    for (std::size_t j = 0; j < sample; ++j) {
      out[j] = tmpl[j] +
               static_cast<float>(rng.gaussian(0.0, spec.noise));
    }
  }
  return d;
}

}  // namespace

Dataset Dataset::prefix(std::size_t n) const {
  DS_CHECK(n <= size(), "prefix " << n << " exceeds dataset size " << size());
  Dataset out;
  out.images = Tensor({n, images.dim(1), images.dim(2), images.dim(3)});
  std::memcpy(out.images.data(), images.data(),
              n * sample_numel() * sizeof(float));
  out.labels.assign(labels.begin(), labels.begin() + static_cast<long>(n));
  return out;
}

TrainTest make_synthetic(const SyntheticSpec& spec) {
  DS_CHECK(spec.classes >= 2, "need at least two classes");
  DS_CHECK(spec.train_count > 0 && spec.test_count > 0, "empty split");
  Rng rng(spec.seed);

  Rng template_rng = rng.fork(1);
  std::vector<std::vector<float>> templates;
  templates.reserve(spec.classes);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    templates.push_back(make_template(spec, template_rng));
  }

  Rng train_rng = rng.fork(2);
  Rng test_rng = rng.fork(3);
  TrainTest tt;
  tt.train = generate_split(spec, templates, spec.train_count, train_rng);
  tt.test = generate_split(spec, templates, spec.test_count, test_rng);
  return tt;
}

std::pair<double, double> normalize(Dataset& dataset) {
  const std::size_t n = dataset.images.numel();
  DS_CHECK(n > 0, "normalize of empty dataset");
  float* data = dataset.images.data();
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += data[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = data[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  const double stddev = std::sqrt(var) + 1e-12;
  normalize_with(dataset, mean, stddev);
  return {mean, stddev};
}

void normalize_with(Dataset& dataset, double mean, double stddev) {
  DS_CHECK(stddev > 0.0, "stddev must be positive");
  const std::size_t n = dataset.images.numel();
  float* data = dataset.images.data();
  const float m = static_cast<float>(mean);
  const float inv = static_cast<float>(1.0 / stddev);
  for (std::size_t i = 0; i < n; ++i) data[i] = (data[i] - m) * inv;
}

namespace {

TrainTest preset(SyntheticSpec spec) {
  TrainTest tt = make_synthetic(spec);
  const auto [mean, stddev] = normalize(tt.train);
  normalize_with(tt.test, mean, stddev);
  return tt;
}

}  // namespace

TrainTest mnist_like(std::uint64_t seed, std::size_t train_count,
                     std::size_t test_count) {
  SyntheticSpec spec;
  spec.classes = 10;
  spec.channels = 1;
  spec.height = 28;
  spec.width = 28;
  spec.train_count = train_count;
  spec.test_count = test_count;
  spec.noise = 3.5;  // tuned: LeNet-S reaches ~0.98 within a few hundred iterations
  spec.seed = seed;
  return preset(spec);
}

TrainTest cifar_like(std::uint64_t seed, std::size_t train_count,
                     std::size_t test_count) {
  SyntheticSpec spec;
  spec.classes = 10;
  spec.channels = 3;
  spec.height = 32;
  spec.width = 32;
  spec.train_count = train_count;
  spec.test_count = test_count;
  spec.noise = 4.2;  // harder than mnist_like, as Cifar is harder than MNIST
  spec.seed = seed;
  return preset(spec);
}

TrainTest imagenet_like(std::uint64_t seed, std::size_t train_count,
                        std::size_t test_count) {
  SyntheticSpec spec;
  spec.classes = 100;
  spec.channels = 3;
  spec.height = 32;
  spec.width = 32;
  spec.train_count = train_count;
  spec.test_count = test_count;
  spec.noise = 2.0;
  spec.seed = seed;
  return preset(spec);
}

}  // namespace ds
