#include "data/sampler.hpp"

#include <cstring>

#include "support/error.hpp"

namespace ds {

BatchSampler::BatchSampler(const Dataset& dataset, std::size_t batch_size,
                           std::uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), rng_(seed) {
  DS_CHECK(batch_size_ > 0, "batch size must be positive");
  DS_CHECK(dataset_.size() > 0, "cannot sample from empty dataset");
}

void BatchSampler::next(Tensor& images, std::vector<std::int32_t>& labels) {
  std::vector<std::size_t> indices(batch_size_);
  for (auto& idx : indices) idx = rng_.below(dataset_.size());
  gather_batch(dataset_, indices, images, labels);
}

void gather_batch(const Dataset& dataset,
                  const std::vector<std::size_t>& indices, Tensor& images,
                  std::vector<std::int32_t>& labels) {
  const std::size_t sample = dataset.sample_numel();
  const Shape want{indices.size(), dataset.images.dim(1),
                   dataset.images.dim(2), dataset.images.dim(3)};
  if (images.shape() != want) images = Tensor(want);
  labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    DS_CHECK(indices[i] < dataset.size(),
             "batch index " << indices[i] << " out of " << dataset.size());
    std::memcpy(images.data() + i * sample,
                dataset.images.data() + indices[i] * sample,
                sample * sizeof(float));
    labels[i] = dataset.labels[indices[i]];
  }
}

std::vector<Dataset> shard(const Dataset& dataset, std::size_t parts) {
  DS_CHECK(parts > 0, "shard into zero parts");
  DS_CHECK(dataset.size() >= parts,
           "dataset of " << dataset.size() << " cannot shard " << parts);
  std::vector<Dataset> out;
  out.reserve(parts);
  const std::size_t sample = dataset.sample_numel();
  const std::size_t base = dataset.size() / parts;
  const std::size_t extra = dataset.size() % parts;
  std::size_t start = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t count = base + (p < extra ? 1 : 0);
    Dataset d;
    d.images = Tensor({count, dataset.images.dim(1), dataset.images.dim(2),
                       dataset.images.dim(3)});
    std::memcpy(d.images.data(), dataset.images.data() + start * sample,
                count * sample * sizeof(float));
    d.labels.assign(dataset.labels.begin() + static_cast<long>(start),
                    dataset.labels.begin() + static_cast<long>(start + count));
    out.push_back(std::move(d));
    start += count;
  }
  return out;
}

std::vector<Dataset> replicate(const Dataset& dataset, std::size_t parts) {
  DS_CHECK(parts > 0, "replicate into zero parts");
  std::vector<Dataset> out;
  out.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    Dataset d;
    d.images = dataset.images;  // deep copy via Tensor copy semantics
    d.labels = dataset.labels;
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace ds
