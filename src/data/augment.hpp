// Training-time data augmentation: random horizontal mirroring and padded
// random cropping — the standard Caffe transformations for the Cifar and
// ImageNet workloads the paper trains (its train_test.prototxt files
// configure exactly these).
#pragma once

#include <cstdint>

#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace ds {

struct AugmentConfig {
  bool mirror = true;        // 50% random horizontal flip
  std::size_t crop_pad = 2;  // zero-pad then crop back to original size;
                             // 0 disables cropping
};

/// Applies the configured transformations to each image of an NCHW batch,
/// in place. Deterministic for a given seed and call sequence.
class Augmenter {
 public:
  explicit Augmenter(AugmentConfig config = {}, std::uint64_t seed = 0xA46);

  void apply(Tensor& batch);

  const AugmentConfig& config() const { return config_; }

 private:
  void mirror_image(float* image, std::size_t channels, std::size_t height,
                    std::size_t width);
  void crop_image(float* image, std::size_t channels, std::size_t height,
                  std::size_t width, std::size_t offset_y,
                  std::size_t offset_x);

  AugmentConfig config_;
  Rng rng_;
  std::vector<float> scratch_;
};

}  // namespace ds
