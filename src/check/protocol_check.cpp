#include "check/protocol_check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

#include "obs/proto.hpp"

namespace ds::check {
namespace {

struct Op {
  enum class Type {
    kSend,
    kLost,
    kRecv,
    kWait,
    kTimeout,
    kCrash,
    kRetire,
    kAcc,
  };
  Type type;
  std::int64_t rank = -1;
  double vtime = 0.0;
  std::uint64_t seq = 0;     // send/lost/recv: message identity component
  std::int64_t peer = -1;    // send/lost: dst; recv/wait/timeout: src
  int tag = 0;
  bool any = false;          // recv_any / wait_any flavor
  double buffer = 0.0;       // acc only
  bool write = false;        // acc only
  std::size_t index = 0;     // position in TraceData.instants (tie-break)
};

using Type = Op::Type;

bool parse_op(const obs::analysis::VInstant& in, Op& op) {
  const std::string_view name = in.name;
  if (name == obs::proto::kSend) {
    op.type = Type::kSend;
  } else if (name == obs::proto::kLost) {
    op.type = Type::kLost;
  } else if (name == obs::proto::kRecv) {
    op.type = Type::kRecv;
  } else if (name == obs::proto::kRecvAny) {
    op.type = Type::kRecv;
    op.any = true;
  } else if (name == obs::proto::kWait) {
    op.type = Type::kWait;
  } else if (name == obs::proto::kWaitAny) {
    op.type = Type::kWait;
    op.any = true;
  } else if (name == obs::proto::kTimeout) {
    op.type = Type::kTimeout;
  } else if (name == obs::proto::kCrash) {
    op.type = Type::kCrash;
  } else if (name == obs::proto::kRetire) {
    op.type = Type::kRetire;
  } else if (name == obs::proto::kAcc) {
    op.type = Type::kAcc;
  } else {
    return false;  // unknown proto event: skip, stay forward-compatible
  }
  op.rank = in.rank;
  op.vtime = in.vtime;
  switch (op.type) {
    case Type::kSend:
    case Type::kLost:
    case Type::kRecv:
      op.seq = static_cast<std::uint64_t>(in.value);
      op.peer = obs::proto::unpack_peer(in.aux);
      op.tag = obs::proto::unpack_tag(in.aux);
      break;
    case Type::kWait:
    case Type::kTimeout:
      op.peer = obs::proto::unpack_peer(in.aux);
      op.tag = obs::proto::unpack_tag(in.aux);
      if (op.peer == obs::proto::kAnyPeer) op.any = true;
      break;
    case Type::kAcc:
      op.write = in.value == obs::proto::kAccWrite;
      op.buffer = in.aux;
      break;
    case Type::kCrash:
    case Type::kRetire:
      break;
  }
  return true;
}

/// Processing priority within one virtual instant: a send must be applied
/// before the recv that matches it at the same vtime (possible with
/// zero-cost transfers), and both before the accesses they order.
int type_order(Type t) {
  switch (t) {
    case Type::kSend:
    case Type::kLost:
      return 0;
    case Type::kRecv:
      return 1;
    default:
      return 2;
  }
}

struct Access {
  std::int64_t rank;
  double vtime;
  double buffer;
  bool write;
  std::size_t index;                  // program-order tie-break
  std::vector<std::uint64_t> vclock;  // reconstructed, at the access
};

/// a happens-before b: b's reconstructed knowledge of a's rank strictly
/// exceeds the comm-event count a had locally observed — i.e. some message
/// chain starting AFTER a reached b. Same-rank pairs are program-ordered.
bool happens_before(const Access& a, const Access& b) {
  if (a.rank == b.rank) return a.index < b.index;
  const auto r = static_cast<std::size_t>(a.rank);
  const std::uint64_t a_self = r < a.vclock.size() ? a.vclock[r] : 0;
  const std::uint64_t b_knows = r < b.vclock.size() ? b.vclock[r] : 0;
  return b_knows >= a_self + 1;
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnmatchedSend:
      return "unmatched-send";
    case ViolationKind::kUnmatchedRecv:
      return "unmatched-recv";
    case ViolationKind::kTagAliasing:
      return "tag-aliasing";
    case ViolationKind::kConcurrentAccess:
      return "concurrent-access";
    case ViolationKind::kDeadlock:
      return "deadlock";
    case ViolationKind::kClockRegression:
      return "clock-regression";
  }
  return "unknown";
}

std::size_t CheckReport::count(ViolationKind kind) const {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

CheckReport check_trace(const obs::analysis::TraceData& trace) {
  CheckReport report;

  // -- Parse the proto events, preserving ingest (per-thread) order. ------
  std::vector<Op> ops;
  for (std::size_t i = 0; i < trace.instants.size(); ++i) {
    const obs::analysis::VInstant& in = trace.instants[i];
    if (in.category != obs::proto::kCategory || in.rank < 0) continue;
    Op op;
    if (!parse_op(in, op)) continue;
    op.index = i;
    ops.push_back(op);
  }
  if (ops.empty()) return report;

  std::int64_t max_rank = 0;
  for (const Op& op : ops) max_rank = std::max(max_rank, op.rank);
  const std::size_t nranks = static_cast<std::size_t>(max_rank) + 1;

  // -- Stats + clock regression (raw per-thread order). -------------------
  // crash/retire may be narrated by a DIFFERENT rank's thread (mark_failed
  // from a peer), so they are exempt from the per-rank monotonicity scan.
  std::set<std::int64_t> ranks_seen;
  std::vector<double> last_vtime(nranks, -1.0);
  std::vector<bool> regressed(nranks, false);
  for (const Op& op : ops) {
    ranks_seen.insert(op.rank);
    switch (op.type) {
      case Type::kSend:
        ++report.stats.sends;
        break;
      case Type::kLost:
        ++report.stats.losses;
        break;
      case Type::kRecv:
        ++report.stats.recvs;
        break;
      case Type::kWait:
        ++report.stats.waits;
        break;
      case Type::kTimeout:
        ++report.stats.timeouts;
        break;
      case Type::kCrash:
        ++report.stats.crashes;
        break;
      case Type::kRetire:
        ++report.stats.retires;
        break;
      case Type::kAcc:
        ++report.stats.accesses;
        break;
    }
    if (op.type == Type::kCrash || op.type == Type::kRetire) continue;
    const auto r = static_cast<std::size_t>(op.rank);
    if (!regressed[r] && op.vtime < last_vtime[r]) {
      regressed[r] = true;
      std::ostringstream os;
      os << "rank " << op.rank << " virtual time ran backwards: " << op.vtime
         << " after " << last_vtime[r];
      report.violations.push_back(Violation{ViolationKind::kClockRegression,
                                            os.str(), op.rank, -1, op.vtime});
    }
    last_vtime[r] = std::max(last_vtime[r], op.vtime);
  }
  report.stats.ranks = ranks_seen.size();

  // -- Global causal replay: vtime order, sends before matching recvs. ----
  std::vector<const Op*> order;
  order.reserve(ops.size());
  for (const Op& op : ops) order.push_back(&op);
  std::sort(order.begin(), order.end(), [](const Op* a, const Op* b) {
    if (a->vtime != b->vtime) return a->vtime < b->vtime;
    const int oa = type_order(a->type);
    const int ob = type_order(b->type);
    if (oa != ob) return oa < ob;
    return a->index < b->index;
  });

  struct SendRecord {
    const Op* op;
    std::vector<std::uint64_t> vclock;  // sender's VC at the send
    bool lost = false;
    bool matched = false;
  };
  std::map<std::pair<std::int64_t, std::uint64_t>, SendRecord> sends;
  std::vector<std::vector<std::uint64_t>> vc(
      nranks, std::vector<std::uint64_t>(nranks, 0));
  std::vector<Access> accesses;
  // Per (src, dst, tag): highest matched seq, for the aliasing check.
  std::map<std::tuple<std::int64_t, std::int64_t, int>, std::uint64_t>
      stream_high;
  std::set<std::tuple<std::int64_t, std::int64_t, int>> stream_flagged;

  for (const Op* op : order) {
    const auto r = static_cast<std::size_t>(op->rank);
    switch (op->type) {
      case Type::kSend:
      case Type::kLost: {
        // The narrated seq IS the sender's self-component after the tick;
        // trusting it keeps hand-authored traces and live runs aligned.
        vc[r][r] = std::max(vc[r][r] + 1, op->seq);
        const auto key = std::make_pair(op->rank, op->seq);
        auto [it, inserted] = sends.emplace(key, SendRecord{op, vc[r], false, false});
        if (op->type == Type::kLost) {
          it->second.lost = true;
        } else if (!inserted) {
          it->second.op = op;
          it->second.vclock = vc[r];
        }
        break;
      }
      case Type::kRecv: {
        const auto key = std::make_pair(op->peer, op->seq);
        const auto it = sends.find(key);
        if (it == sends.end()) {
          std::ostringstream os;
          os << "rank " << op->rank << " received (sender " << op->peer
             << ", seq " << op->seq << ", tag " << op->tag
             << ") but no such send was narrated";
          report.violations.push_back(
              Violation{ViolationKind::kUnmatchedRecv, os.str(), op->rank,
                        op->peer, op->vtime});
        } else if (it->second.matched) {
          std::ostringstream os;
          os << "rank " << op->rank << " received (sender " << op->peer
             << ", seq " << op->seq << ") a second time — duplicate delivery";
          report.violations.push_back(
              Violation{ViolationKind::kUnmatchedRecv, os.str(), op->rank,
                        op->peer, op->vtime});
        } else {
          it->second.matched = true;
          ++report.stats.matched;
          for (std::size_t i = 0; i < nranks; ++i) {
            vc[r][i] = std::max(vc[r][i], it->second.vclock[i]);
          }
          const auto stream = std::make_tuple(op->peer, op->rank, op->tag);
          auto& high = stream_high[stream];
          if (op->seq <= high && stream_flagged.insert(stream).second) {
            std::ostringstream os;
            os << "tag " << op->tag << " aliases two message streams from rank "
               << op->peer << " to rank " << op->rank << ": seq " << op->seq
               << " matched after seq " << high;
            report.violations.push_back(
                Violation{ViolationKind::kTagAliasing, os.str(), op->rank,
                          op->peer, op->vtime});
          }
          high = std::max(high, op->seq);
        }
        ++vc[r][r];
        break;
      }
      case Type::kAcc:
        accesses.push_back(Access{op->rank, op->vtime, op->buffer, op->write,
                                  op->index, vc[r]});
        break;
      case Type::kWait:
      case Type::kTimeout:
      case Type::kCrash:
      case Type::kRetire:
        break;
    }
  }

  // -- Unmatched sends. ---------------------------------------------------
  // Under faults a delivered-but-never-received message is EXPECTED — the
  // receiver timed out or someone crashed — so the check only fires on
  // traces with no crash/timeout to excuse the orphan.
  if (report.stats.crashes == 0 && report.stats.timeouts == 0) {
    std::vector<const SendRecord*> orphans;
    for (const auto& [key, record] : sends) {
      if (!record.matched && !record.lost) orphans.push_back(&record);
    }
    std::sort(orphans.begin(), orphans.end(),
              [](const SendRecord* a, const SendRecord* b) {
                return a->op->index < b->op->index;
              });
    for (const SendRecord* record : orphans) {
      const Op* op = record->op;
      std::ostringstream os;
      os << "rank " << op->rank << " send (seq " << op->seq << ", tag "
         << op->tag << ") to rank " << op->peer
         << " was never received, lost, or excused by a failure";
      report.violations.push_back(Violation{ViolationKind::kUnmatchedSend,
                                            os.str(), op->rank, op->peer,
                                            op->vtime});
    }
  }

  // -- Races: concurrent conflicting accesses per buffer. -----------------
  std::map<double, std::vector<const Access*>> by_buffer;
  for (const Access& a : accesses) by_buffer[a.buffer].push_back(&a);
  std::set<std::tuple<double, std::int64_t, std::int64_t>> race_flagged;
  for (const auto& [buffer, accs] : by_buffer) {
    for (std::size_t i = 0; i < accs.size(); ++i) {
      for (std::size_t j = i + 1; j < accs.size(); ++j) {
        const Access& a = *accs[i];
        const Access& b = *accs[j];
        if (a.rank == b.rank) continue;
        if (!a.write && !b.write) continue;
        if (happens_before(a, b) || happens_before(b, a)) continue;
        const auto pair_key = std::make_tuple(
            buffer, std::min(a.rank, b.rank), std::max(a.rank, b.rank));
        if (!race_flagged.insert(pair_key).second) continue;
        std::ostringstream os;
        os << "buffer " << buffer << ": rank " << a.rank << ' '
           << (a.write ? "write" : "read") << " @" << a.vtime
           << " is concurrent with rank " << b.rank << ' '
           << (b.write ? "write" : "read") << " @" << b.vtime;
        report.violations.push_back(Violation{ViolationKind::kConcurrentAccess,
                                              os.str(), a.rank, b.rank,
                                              std::max(a.vtime, b.vtime)});
      }
    }
  }

  // -- Deadlock: cycles among ranks whose LAST event is a blocked wait. ---
  // Per-rank program order = ingest order stable-sorted by vtime (foreign-
  // thread crash events land at their narrated time).
  std::vector<std::vector<const Op*>> per_rank(nranks);
  for (const Op& op : ops) {
    per_rank[static_cast<std::size_t>(op.rank)].push_back(&op);
  }
  std::vector<std::int64_t> waits_on(nranks, -1);  // -1: not blocked
  std::vector<bool> blocked_any(nranks, false);
  for (std::size_t r = 0; r < nranks; ++r) {
    auto& list = per_rank[r];
    std::stable_sort(list.begin(), list.end(),
                     [](const Op* a, const Op* b) { return a->vtime < b->vtime; });
    if (list.empty()) continue;
    const Op* last = list.back();
    if (last->type != Type::kWait) continue;
    if (last->any) {
      blocked_any[r] = true;
    } else {
      waits_on[r] = last->peer;
    }
  }
  std::vector<int> color(nranks, 0);  // 0 unvisited, 1 on path, 2 done
  std::set<std::int64_t> cycles_flagged;  // dedupe by min rank in the cycle
  for (std::size_t start = 0; start < nranks; ++start) {
    if (color[start] != 0 || waits_on[start] < 0) continue;
    std::vector<std::size_t> path;
    std::size_t r = start;
    while (color[r] == 0 && waits_on[r] >= 0 &&
           static_cast<std::size_t>(waits_on[r]) < nranks) {
      color[r] = 1;
      path.push_back(r);
      r = static_cast<std::size_t>(waits_on[r]);
    }
    if (color[r] == 1) {
      // Found a cycle: the path suffix starting at r.
      const auto at = std::find(path.begin(), path.end(), r);
      std::vector<std::size_t> cycle(at, path.end());
      const std::int64_t key = static_cast<std::int64_t>(
          *std::min_element(cycle.begin(), cycle.end()));
      if (cycles_flagged.insert(key).second) {
        std::ostringstream os;
        os << "wait-for cycle:";
        for (const std::size_t c : cycle) {
          os << " rank " << c << " -> rank " << waits_on[c] << " (tag "
             << per_rank[c].back()->tag << ");";
        }
        const Op* head = per_rank[cycle.front()].back();
        report.violations.push_back(Violation{
            ViolationKind::kDeadlock, os.str(),
            static_cast<std::int64_t>(cycle.front()), head->peer,
            head->vtime});
      }
    }
    for (const std::size_t p : path) color[p] = 2;
    color[r] = std::max(color[r], 2);
  }
  // A trailing wildcard wait is only a deadlock symptom if every potential
  // sender is itself blocked or gone; the matched-wait cycle above is the
  // checkable core, so wildcard stalls are reported only when NO rank made
  // further progress (all trailing ops are waits).
  if (cycles_flagged.empty()) {
    bool any_blocked_any = false;
    bool all_stuck = true;
    for (std::size_t r = 0; r < nranks; ++r) {
      if (per_rank[r].empty()) continue;
      if (blocked_any[r]) any_blocked_any = true;
      const Type t = per_rank[r].back()->type;
      if (t != Type::kWait && t != Type::kCrash && t != Type::kRetire) {
        all_stuck = false;
      }
    }
    if (any_blocked_any && all_stuck && report.stats.timeouts == 0) {
      std::ostringstream os;
      os << "every rank ends blocked (wildcard wait present) with no "
            "timeout narrated — wildcard starvation deadlock";
      for (std::size_t r = 0; r < nranks; ++r) {
        if (blocked_any[r]) {
          report.violations.push_back(Violation{
              ViolationKind::kDeadlock, os.str(),
              static_cast<std::int64_t>(r), -1, per_rank[r].back()->vtime});
          break;
        }
      }
    }
  }

  return report;
}

std::string format_report(const CheckReport& report) {
  std::ostringstream os;
  const CheckStats& s = report.stats;
  os << "protocol check: " << s.ranks << " ranks, " << s.sends << " sends ("
     << s.losses << " lost), " << s.recvs << " recvs (" << s.matched
     << " matched), " << s.waits << " waits, " << s.timeouts << " timeouts, "
     << s.crashes << " crashes, " << s.retires << " retires, " << s.accesses
     << " buffer accesses\n";
  if (report.ok()) {
    os << "OK: no violations\n";
    return os.str();
  }
  os << report.violations.size() << " violation(s):\n";
  for (const Violation& v : report.violations) {
    os << "  [" << violation_kind_name(v.kind) << "] " << v.detail << '\n';
  }
  return os.str();
}

}  // namespace ds::check
