// Bounded schedule exploration for small fabric protocols (DESIGN.md §9).
//
// The fabric's only source of schedule nondeterminism is recv_any: which
// queued source a wildcard receive serves. explore() reruns a protocol
// under EVERY reachable wildcard interleaving (depth-first over choice
// prescriptions, enforced through Fabric::set_any_chooser) and asserts the
// two properties the paper's parameter-server redesign rests on:
//
//   * deadlock-freedom — every schedule completes. Runs execute under a
//     FaultPlan::with_polling bound, so a schedule that WOULD hang instead
//     surfaces as RankFailure(kTimeout) and is reported as a deadlock;
//   * result-determinism — every completed schedule produces the same
//     declared digest (the protocol's own summary of its result), i.e. the
//     wildcard order is an implementation detail, not a semantic one.
//
// A prescription that the protocol can never realize (the prescribed
// source's message cannot arrive because that source is blocked on us) is
// detected by the same polling bound while the chooser is still enforcing,
// and counted `infeasible` rather than as a deadlock.
//
// The state space is bounded: protocols must be small (P ≤ 4, a few
// messages per rank) and options.max_schedules caps the walk — `exhausted`
// reports whether the DFS truly finished.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "comm/fabric.hpp"

namespace ds::check {

/// A protocol under test: `body` is executed once per rank, on its own
/// thread, against a fresh fabric per schedule. Each rank reports its
/// contribution to the run's result by writing digest[rank] — the value
/// explore() compares across schedules (so it must be a pure function of
/// the protocol's RESULT, not of the schedule; e.g. a commutative
/// accumulation, a count, a final parameter value).
struct Protocol {
  std::string name;
  std::size_t ranks = 0;
  std::function<void(Fabric&, std::size_t rank, std::vector<double>& digest)>
      body;
};

struct ExploreOptions {
  /// Hard cap on schedules tried; `exhausted` tells whether the DFS ended
  /// on its own before hitting it.
  std::size_t max_schedules = 256;
  /// Polling bound per blocked receive (FaultPlan::with_polling): real-time
  /// polls × seconds-per-poll before a stuck schedule resolves to kTimeout.
  std::size_t poll_budget = 400;
  double poll_seconds = 0.002;
};

struct ExploreReport {
  std::string protocol;
  std::size_t schedules = 0;   // runs attempted
  std::size_t completed = 0;   // ran to the end, digest collected
  std::size_t infeasible = 0;  // prescription unrealizable (timeout while enforcing)
  std::size_t deadlocks = 0;   // timeout with nothing being enforced
  bool deterministic = true;   // all completed digests identical
  bool exhausted = true;       // DFS finished before max_schedules
  std::vector<std::string> notes;

  bool ok() const {
    return deadlocks == 0 && deterministic && completed > 0;
  }
};

/// Explore every wildcard-receive interleaving of `protocol`. Protocols
/// with no recv_any run twice (digest stability without a schedule tree).
ExploreReport explore(const Protocol& protocol,
                      const ExploreOptions& options = {});

/// Human-readable one-paragraph rendering.
std::string format_report(const ExploreReport& report);

// ---------------------------------------------------------------------------
// Built-in miniatures of the repo's three runner families. Message flow and
// tags mirror core/fabric_algorithms.cpp; arithmetic is simplified to small
// exact-in-double integers so digests compare with ==.
// ---------------------------------------------------------------------------

/// Sync family (run_fabric_easgd): `rounds` tree-allreduce rounds over all
/// ranks. Matched receives only — the explorer's control case.
Protocol sync_tree_protocol(std::size_t ranks, std::size_t rounds);

/// Round-robin family (run_fabric_round_robin_easgd): master sweeps workers
/// in fixed order with matched receives, `rounds` times.
Protocol round_robin_protocol(std::size_t ranks, std::size_t rounds);

/// Async family (run_fabric_async_easgd): rank 0 serves `budget` wildcard
/// pushes first-come-first-served and replies to the pusher; workers split
/// the budget. The digest (commutative center sum + per-worker interaction
/// count) is schedule-independent by design — which is exactly what
/// explore() proves.
Protocol async_server_protocol(std::size_t ranks, std::size_t budget);

/// Bucketed family (run_fabric_bucketed_easgd, wait-free mode): workers
/// push `buckets` retire-ordered bucket messages per round ([bucket id,
/// value] payloads on one shared tag); the center serves pushes by
/// recv_any, replies the pre-step per-bucket value immediately, steps a
/// bucket once all workers contributed, and holds the LAST bucket's
/// replies until the whole round is served (the iteration barrier). The
/// DFS drives every crossed-bucket completion order; per-bucket sums are
/// commutative, so the digest is schedule-independent — which is the
/// wait-free pipeline's correctness claim.
Protocol bucketed_exchange_protocol(std::size_t ranks, std::size_t buckets,
                                    std::size_t rounds);

/// Seeded BUG variant: the center folds bucket pushes in ARRIVAL order
/// with a non-commutative update (center = 2·center + value) — the
/// out-of-order bucket-apply mistake a wait-free pipeline invites.
/// explore() must flag it NONDETERMINISTIC (report.ok() == false).
Protocol bucketed_misapply_protocol(std::size_t ranks, std::size_t buckets);

}  // namespace ds::check
