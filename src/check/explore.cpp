#include "check/explore.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "support/thread_annotations.hpp"

#include "comm/cost_model.hpp"
#include "comm/fault.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace ds::check {
namespace {

/// One wildcard choice point, keyed by its occurrence order across the run
/// (the k-th completed recv_any). `sources` accumulates every candidate
/// source ever seen at this point across revisits — the union is what makes
/// the DFS exhaustive when different prefixes expose different queues.
struct Frame {
  std::size_t dst = 0;
  std::vector<std::size_t> sources;  // discovery order
  std::size_t chosen = 0;            // index into sources
};

struct ChooserState {
  Mutex mutex;
  std::vector<Frame>* frames DS_GUARDED_BY(mutex) = nullptr;
  // Completed wildcard receives this run.
  std::size_t served DS_GUARDED_BY(mutex) = 0;
  // Blocked until the prescribed source queues.
  bool enforcing_wait DS_GUARDED_BY(mutex) = false;
  // Per-choice-point calls THIS run.
  std::vector<std::size_t> visits DS_GUARDED_BY(mutex);
};

/// Polls to sit out before serving any choice point, so sends that are
/// logically concurrent with the receive get real time to queue and enter
/// the candidate union. Without this the DFS only ever branches on sources
/// that happened to arrive first, and racy-but-late candidates are missed.
constexpr std::size_t kDiscoveryStallPolls = 3;

std::size_t schedule_chooser(void* ctx, std::size_t dst,
                             const std::size_t* candidates,
                             std::size_t count) {
  auto* state = static_cast<ChooserState*>(ctx);
  const MutexLock lock(state->mutex);
  std::vector<Frame>& frames = *state->frames;
  const std::size_t k = state->served;
  if (k == frames.size()) {
    frames.push_back(Frame{dst, {}, 0});
  }
  Frame& frame = frames[k];
  for (std::size_t i = 0; i < count; ++i) {
    if (std::find(frame.sources.begin(), frame.sources.end(), candidates[i]) ==
        frame.sources.end()) {
      frame.sources.push_back(candidates[i]);
    }
  }
  if (state->visits.size() <= k) state->visits.resize(k + 1, 0);
  if (++state->visits[k] <= kDiscoveryStallPolls) {
    // Not enforcement — just widening the candidate window; the receive
    // polls back into us after poll_seconds (or on the next arrival).
    return Fabric::kChooserWait;
  }
  const std::size_t want = frame.sources[frame.chosen];
  for (std::size_t i = 0; i < count; ++i) {
    if (candidates[i] == want) {
      ++state->served;
      state->enforcing_wait = false;
      return i;
    }
  }
  // The prescribed source has nothing queued yet: block the receive until
  // it does. If it never can (it is blocked on US), the polling bound turns
  // this into a timeout and the branch is counted infeasible.
  state->enforcing_wait = true;
  return Fabric::kChooserWait;
}

std::string describe_schedule(const std::vector<Frame>& frames) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) os << ' ';
    os << frames[i].sources[frames[i].chosen];
  }
  os << ']';
  return os.str();
}

}  // namespace

ExploreReport explore(const Protocol& protocol,
                      const ExploreOptions& options) {
  DS_CHECK(protocol.ranks > 0, "protocol needs at least one rank");
  DS_CHECK(static_cast<bool>(protocol.body), "protocol needs a body");

  ExploreReport report;
  report.protocol = protocol.name;

  std::vector<Frame> frames;
  std::vector<double> reference;
  bool have_reference = false;
  bool more = true;

  while (more && report.schedules < options.max_schedules) {
    ++report.schedules;

    FaultPlan plan = FaultPlan::none().with_polling(options.poll_budget,
                                                    options.poll_seconds);
    Fabric fabric(protocol.ranks, cray_aries(), std::move(plan));
    ChooserState state;
    {
      // Single-threaded setup — the rank threads don't exist yet — but the
      // capability still travels with the member.
      const MutexLock lock(state.mutex);
      state.frames = &frames;
    }
    fabric.set_any_chooser(&schedule_chooser, &state);

    std::vector<double> digest(protocol.ranks, 0.0);
    std::atomic<bool> timed_out{false};
    std::atomic<bool> other_failure{false};
    parallel_for_threads(protocol.ranks, [&](std::size_t rank) {
      try {
        protocol.body(fabric, rank, digest);
        fabric.retire(rank);
      } catch (const RankFailure& failure) {
        if (failure.kind() == RankFailure::Kind::kTimeout) {
          timed_out.store(true);
        } else {
          other_failure.store(true);
        }
        fabric.retire(rank);
      }
    });

    if (timed_out.load()) {
      bool enforcing = false;
      {
        const MutexLock lock(state.mutex);
        enforcing = state.enforcing_wait;
      }
      if (enforcing) {
        ++report.infeasible;
      } else {
        ++report.deadlocks;
        report.notes.push_back("deadlock under schedule " +
                               describe_schedule(frames));
      }
    } else if (other_failure.load()) {
      ++report.deadlocks;
      report.notes.push_back("unexpected rank failure under schedule " +
                             describe_schedule(frames));
    } else {
      ++report.completed;
      if (!have_reference) {
        reference = digest;
        have_reference = true;
      } else if (digest != reference) {
        if (report.deterministic) {
          report.deterministic = false;
          report.notes.push_back("digest diverged under schedule " +
                                 describe_schedule(frames));
        }
      }
    }

    // Depth-first backtrack: advance the deepest frame with an untried
    // source; everything below it belonged to the abandoned suffix.
    more = false;
    while (!frames.empty()) {
      Frame& last = frames.back();
      if (last.chosen + 1 < last.sources.size()) {
        ++last.chosen;
        more = true;
        break;
      }
      frames.pop_back();
    }
    // Wildcard-free protocols leave no frames: run twice anyway so the
    // determinism assertion compares two independent executions.
    if (!more && report.schedules == 1 && frames.empty()) more = true;
  }

  report.exhausted = !more;
  {
    std::ostringstream os;
    os << protocol.name << ": " << report.schedules << " schedule(s), "
       << report.completed << " completed, " << report.infeasible
       << " infeasible, " << report.deadlocks << " deadlocked";
    report.notes.insert(report.notes.begin(), os.str());
  }
  return report;
}

std::string format_report(const ExploreReport& report) {
  std::ostringstream os;
  os << "explore " << report.protocol << ": " << report.schedules
     << " schedules (" << report.completed << " completed, "
     << report.infeasible << " infeasible, " << report.deadlocks
     << " deadlocked), "
     << (report.deterministic ? "deterministic" : "NONDETERMINISTIC") << ", "
     << (report.exhausted ? "exhausted" : "BOUND HIT")
     << (report.ok() ? " — OK" : " — FAIL") << '\n';
  for (std::size_t i = 1; i < report.notes.size(); ++i) {
    os << "  " << report.notes[i] << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Built-in protocol miniatures.
// ---------------------------------------------------------------------------

Protocol sync_tree_protocol(std::size_t ranks, std::size_t rounds) {
  Protocol p;
  p.name = "sync_tree";
  p.ranks = ranks;
  p.body = [rounds](Fabric& fabric, std::size_t rank,
                    std::vector<double>& digest) {
    std::vector<float> buf(4, static_cast<float>(rank + 1));
    for (std::size_t t = 0; t < rounds; ++t) {
      fabric.tree_allreduce(rank, 0, buf);
    }
    digest[rank] = static_cast<double>(buf[0]);
  };
  return p;
}

Protocol round_robin_protocol(std::size_t ranks, std::size_t rounds) {
  DS_CHECK(ranks >= 2, "round robin needs a master and a worker");
  Protocol p;
  p.name = "round_robin";
  p.ranks = ranks;
  constexpr int kPushTag = 903;
  constexpr int kReplyTag = 904;
  p.body = [ranks, rounds](Fabric& fabric, std::size_t rank,
                           std::vector<double>& digest) {
    if (rank == 0) {
      double center = 0.0;
      for (std::size_t t = 1; t <= rounds; ++t) {
        for (std::size_t w = 1; w < ranks; ++w) {
          const std::vector<float> push = fabric.recv(0, w, kPushTag);
          center += static_cast<double>(push[0]);
          fabric.send(0, w, kReplyTag, {static_cast<float>(center)});
        }
      }
      digest[0] = center;
    } else {
      for (std::size_t t = 1; t <= rounds; ++t) {
        fabric.send(rank, 0, kPushTag,
                    {static_cast<float>(rank * 100 + t)});
        (void)fabric.recv(rank, 0, kReplyTag);
        digest[rank] += 1.0;
      }
    }
  };
  return p;
}

Protocol async_server_protocol(std::size_t ranks, std::size_t budget) {
  DS_CHECK(ranks >= 2, "parameter server needs a server and a worker");
  Protocol p;
  p.name = "async_server";
  p.ranks = ranks;
  constexpr int kPushTag = 901;
  constexpr int kReplyTag = 902;
  const std::size_t workers = ranks - 1;
  p.body = [ranks, workers, budget](Fabric& fabric, std::size_t rank,
                                    std::vector<double>& digest) {
    if (rank == 0) {
      // Commutative accumulation: the center is the SUM of every push, so
      // its final value is the same under every service order — the
      // digest-determinism the explorer asserts.
      double center = 0.0;
      for (std::size_t done = 0; done < budget; ++done) {
        auto [src, push] = fabric.recv_any(0, kPushTag);
        center += static_cast<double>(push[0]);
        fabric.send(0, src, kReplyTag, {static_cast<float>(center)});
      }
      digest[0] = center;
    } else {
      const std::size_t w = rank - 1;
      const std::size_t quota =
          budget / workers + (w < budget % workers ? 1 : 0);
      for (std::size_t t = 1; t <= quota; ++t) {
        // Push values depend only on (worker, t), never on the reply, so
        // the set of pushes — and with it the center sum — is fixed.
        fabric.send(rank, 0, kPushTag,
                    {static_cast<float>(rank * 1000 + t)});
        (void)fabric.recv(rank, 0, kReplyTag);
      }
      digest[rank] = static_cast<double>(quota);
    }
  };
  return p;
}

Protocol bucketed_exchange_protocol(std::size_t ranks, std::size_t buckets,
                                    std::size_t rounds) {
  DS_CHECK(ranks >= 2, "bucketed exchange needs a center and a worker");
  DS_CHECK(buckets >= 1, "need at least one bucket");
  Protocol p;
  p.name = "bucketed_exchange";
  p.ranks = ranks;
  constexpr int kPushTag = 905;
  constexpr int kReplyTagBase = 910;
  const std::size_t workers = ranks - 1;
  p.body = [workers, buckets, rounds](Fabric& fabric, std::size_t rank,
                                      std::vector<double>& digest) {
    // Push values are a pure function of (worker, bucket, round); center
    // slices fold them with a commutative sum. Every quantity stays a
    // small exact-in-double integer, so digests compare with ==.
    auto push_value = [](std::size_t w, std::size_t b, std::size_t t) {
      return static_cast<float>(w * 100 + b * 10 + t);
    };
    const std::size_t last = buckets - 1;
    if (rank == 0) {
      std::vector<double> center(buckets, 0.0);  // per-bucket "slice"
      for (std::size_t t = 1; t <= rounds; ++t) {
        std::vector<double> sums(buckets, 0.0);
        std::vector<std::size_t> got(buckets, 0);
        std::vector<std::size_t> last_srcs;
        for (std::size_t n = 0; n < workers * buckets; ++n) {
          auto [src, push] = fabric.recv_any(0, kPushTag);
          const std::size_t b = static_cast<std::size_t>(push[0]);
          // Pre-step reply right away — except the last bucket, whose
          // reply is the round barrier (mirrors the runner).
          if (b < last) {
            fabric.send(0, src, kReplyTagBase + static_cast<int>(b),
                        {static_cast<float>(center[b])});
          } else {
            last_srcs.push_back(src);
          }
          sums[b] += static_cast<double>(push[1]);
          if (++got[b] == workers && b < last) center[b] += sums[b];
        }
        for (const std::size_t src : last_srcs) {
          fabric.send(0, src, kReplyTagBase + static_cast<int>(last),
                      {static_cast<float>(center[last])});
        }
        center[last] += sums[last];
      }
      for (std::size_t b = 0; b < buckets; ++b) digest[0] += center[b];
    } else {
      for (std::size_t t = 1; t <= rounds; ++t) {
        for (std::size_t b = 0; b < buckets; ++b) {
          fabric.send(rank, 0, kPushTag,
                      {static_cast<float>(b), push_value(rank, b, t)});
        }
        for (std::size_t b = 0; b < buckets; ++b) {
          const std::vector<float> reply =
              fabric.recv(rank, 0, kReplyTagBase + static_cast<int>(b));
          digest[rank] += static_cast<double>(reply[0]);
        }
      }
    }
  };
  return p;
}

Protocol bucketed_misapply_protocol(std::size_t ranks, std::size_t buckets) {
  DS_CHECK(ranks >= 3, "need two workers to expose an apply-order race");
  Protocol p;
  p.name = "bucketed_misapply_bug";
  p.ranks = ranks;
  constexpr int kPushTag = 905;
  p.body = [ranks, buckets](Fabric& fabric, std::size_t rank,
                            std::vector<double>& digest) {
    const std::size_t workers = ranks - 1;
    if (rank == 0) {
      // THE BUG: fold pushes into the center in arrival order with a
      // non-commutative update. Any two schedules that swap a pair of
      // pushes produce different centers — explore() must call it
      // NONDETERMINISTIC.
      double center = 0.0;
      for (std::size_t n = 0; n < workers * buckets; ++n) {
        auto [src, push] = fabric.recv_any(0, kPushTag);
        (void)src;
        center = 2.0 * center + static_cast<double>(push[1]);
      }
      digest[0] = center;
    } else {
      for (std::size_t b = 0; b < buckets; ++b) {
        fabric.send(rank, 0, kPushTag,
                    {static_cast<float>(b),
                     static_cast<float>(rank * 10 + b)});
      }
      digest[rank] = static_cast<double>(buckets);
    }
  };
  return p;
}

}  // namespace ds::check
