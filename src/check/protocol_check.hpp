// Offline happens-before checker over proto.v1 event streams (DESIGN.md §9).
//
// check_trace() consumes a normalized obs::analysis::TraceData — from a live
// recorder snapshot or a re-ingested Chrome trace, they are equivalent by
// construction — and re-derives the run's causal structure from nothing but
// the "proto"-category instants the fabric narrated:
//
//   * Lamport vector clocks are RECONSTRUCTED per rank from program order
//     plus send→recv edges (message identity = (sender, seq)), never
//     trusted from the trace — so the checker also audits the fabric's own
//     clock discipline;
//   * conflicting parameter-buffer accesses ("acc" events on the same
//     buffer, at least one write, different ranks) that the reconstructed
//     clocks prove CONCURRENT are reported as races;
//   * receives that name a send nobody made, sends that were neither
//     received nor narrated lost (in a trace with no crash/timeout to
//     excuse them), and per-(src,dst,tag) order inversions (tag aliasing)
//     are protocol violations;
//   * ranks whose last act is a blocked matched wait form a wait-for
//     graph; its cycles are deadlocks;
//   * a rank whose own virtual timeline runs backwards is a clock
//     regression (instrumentation or ingest bug).
//
// The checker is read-only and runs after the rank threads joined; it holds
// no locks and touches no fabric state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis/analysis.hpp"

namespace ds::check {

enum class ViolationKind {
  /// A delivered send (no "lost" narration) that no receive ever matched,
  /// in a trace with no crash/timeout that could excuse the loss.
  kUnmatchedSend,
  /// A receive naming a (sender, seq) no send event carries.
  kUnmatchedRecv,
  /// Matched seqs on one (src, dst, tag) triple arrived out of send order —
  /// two logically distinct message streams are sharing a tag.
  kTagAliasing,
  /// Two accesses to one buffer, at least one a write, from different
  /// ranks, with NO happens-before path between them.
  kConcurrentAccess,
  /// A cycle in the wait-for graph of ranks still blocked at trace end.
  kDeadlock,
  /// A rank's own event stream goes backwards in virtual time.
  kClockRegression,
};

const char* violation_kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string detail;           // human-readable, names ranks/seqs/buffers
  std::int64_t rank_a = -1;     // primary rank involved
  std::int64_t rank_b = -1;     // peer rank, when the violation is a pair
  double vtime = 0.0;           // virtual time of the offending event
};

struct CheckStats {
  std::size_t ranks = 0;      // distinct ranks seen in proto events
  std::size_t sends = 0;      // "send" events
  std::size_t losses = 0;     // "lost" events
  std::size_t recvs = 0;      // "recv" + "recv_any" events
  std::size_t matched = 0;    // recvs whose (sender, seq) resolved
  std::size_t waits = 0;      // "wait" + "wait_any" events
  std::size_t timeouts = 0;   // "timeout" events
  std::size_t crashes = 0;    // "crash" events
  std::size_t retires = 0;    // "retire" events
  std::size_t accesses = 0;   // "acc" events
};

struct CheckReport {
  std::vector<Violation> violations;
  CheckStats stats;

  bool ok() const { return violations.empty(); }
  std::size_t count(ViolationKind kind) const;
};

/// Run every check over the proto events in `trace`. A trace with no proto
/// events yields an empty, ok() report — tracing was simply off.
CheckReport check_trace(const obs::analysis::TraceData& trace);

/// Multi-line human-readable rendering (stats + one line per violation).
std::string format_report(const CheckReport& report);

}  // namespace ds::check
