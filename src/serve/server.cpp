#include "serve/server.hpp"

#include <algorithm>
#include <cstring>
#include <queue>

#include "nn/serialize.hpp"
#include "obs/monitor/monitor.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace ds::serve {

namespace {

constexpr const char* kServeCategory = "serve";
constexpr const char* kEnqueueEvent = "enqueue";
constexpr const char* kShedEvent = "shed";
constexpr const char* kDispatchEvent = "dispatch";
constexpr const char* kReplyEvent = "reply";
constexpr const char* kBatchSpan = "infer_batch";
constexpr const char* kReplySpan = "reply";
constexpr const char* kScaleUpEvent = "scale_up";
constexpr const char* kScaleDownEvent = "scale_down";

// Discrete event: (time, push sequence) ordered, smallest first. The push
// sequence both breaks virtual-time ties deterministically and preserves
// FIFO among same-instant events.
struct Event {
  enum Kind : std::uint8_t { kArrival, kTimer, kDone, kActivate };
  double t = 0.0;
  std::uint64_t seq = 0;
  Kind kind = kArrival;
  std::uint64_t payload = 0;  // request index (kArrival) / replica (kDone)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

double ServeResult::latency_quantile_ms(double q) const {
  std::vector<double> lat;
  lat.reserve(served);
  for (const RequestRecord& r : requests) {
    if (r.outcome == Outcome::kServed) lat.push_back(r.latency());
  }
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  q = std::min(std::max(q, 0.0), 1.0);
  const std::size_t idx = std::min(
      lat.size() - 1, static_cast<std::size_t>(q * static_cast<double>(lat.size())));
  return lat[idx] * 1e3;
}

std::uint64_t ServeResult::outcome_digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const RequestRecord& r : requests) {
    h = fnv1a(h, static_cast<std::uint64_t>(r.outcome));
    h = fnv1a(h, static_cast<std::uint64_t>(r.replica + 1));
    h = fnv1a(h, r.batch_id);
    h = fnv1a(h, static_cast<std::uint64_t>(r.batch_size));
  }
  h = fnv1a(h, scale_ups);
  h = fnv1a(h, scale_downs);
  return h;
}

struct Server::Impl {
  NetworkFactory factory;
  GpuSystem device;  // by value: timing model outlives any caller's copy

  struct Replica {
    std::unique_ptr<Network> net;
    bool active = false;
    bool busy = false;
  };
  std::vector<Replica> replicas;
  std::size_t active_count = 0;

  // Cached instrument references (registration is find-or-create once).
  obs::Counter& requests_ctr = obs::metrics().counter(obs::names::kServeRequests);
  obs::Counter& served_ctr = obs::metrics().counter(obs::names::kServeServed);
  obs::Counter& shed_ctr = obs::metrics().counter(obs::names::kServeShed);
  obs::Counter& miss_ctr =
      obs::metrics().counter(obs::names::kServeDeadlineMiss);
  obs::Counter& scale_ctr =
      obs::metrics().counter(obs::names::kServeScaleEvents);
  obs::Gauge& depth_gauge = obs::metrics().gauge(obs::names::kServeQueueDepth);
  obs::Histogram& latency_hist =
      obs::metrics().histogram(obs::names::kServeLatencyUsec);
  obs::Histogram& batch_hist =
      obs::metrics().histogram(obs::names::kServeBatchSize);

  Impl(NetworkFactory f, const GpuSystem& d) : factory(std::move(f)), device(d) {}

  std::unique_ptr<Network> build_replica(const ServerConfig& config) {
    std::unique_ptr<Network> net = factory();
    DS_CHECK(net != nullptr && net->finalized(),
             "serve replica factory must return a finalized network");
    if (!config.checkpoint_path.empty()) {
      load_checkpoint(*net, config.checkpoint_path);
    }
    return net;
  }
};

Server::Server(NetworkFactory factory, const GpuSystem& device,
               ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(factory), device)),
      config_(std::move(config)) {
  DS_CHECK(config_.replicas > 0, "server needs at least one replica");
  DS_CHECK(config_.batch.max_batch > 0, "max_batch must be positive");
  DS_CHECK(config_.batch.max_queue_delay_s >= 0.0,
           "max_queue_delay_s must be non-negative");
  std::size_t ceiling = config_.replicas;
  if (config_.autoscale.enabled) {
    DS_CHECK(config_.autoscale.min_replicas > 0 &&
                 config_.autoscale.min_replicas <=
                     config_.autoscale.max_replicas,
             "autoscale replica bounds are inverted");
    DS_CHECK(config_.replicas >= config_.autoscale.min_replicas &&
                 config_.replicas <= config_.autoscale.max_replicas,
             "initial replicas outside the autoscale bounds");
    ceiling = config_.autoscale.max_replicas;
  }
  impl_->replicas.resize(ceiling);
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    impl_->replicas[i].net = impl_->build_replica(config_);
    impl_->replicas[i].active = true;
  }
  impl_->active_count = config_.replicas;
}

Server::~Server() = default;

std::size_t Server::active_replicas() const { return impl_->active_count; }

ServeResult Server::run(const std::vector<double>& arrivals,
                        const Dataset& pool) {
  DS_CHECK(pool.size() > 0, "serve request pool is empty");
  Impl& s = *impl_;
  const BatchPolicy& policy = config_.batch;
  const bool traced = obs::tracing_enabled();

  ServeResult result;
  result.requests.resize(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    RequestRecord& r = result.requests[i];
    r.id = i;
    r.arrival = arrivals[i];
    r.deadline = arrivals[i] + config_.admission.deadline_s;
  }
  const obs::HistogramWindow latency_before = s.latency_hist.window();
  const obs::HistogramWindow batch_before = s.batch_hist.window();

  // Admission estimate inputs: a full batch's service and reply time are
  // fixed by the device model, so precompute them once.
  const double full_service = s.device.data_copy_seconds(policy.max_batch) +
                              s.device.infer_seconds(policy.max_batch);
  const double full_reply = s.device.reply_seconds(policy.max_batch);

  Batcher batcher(policy);
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  const auto push_event = [&](double t, Event::Kind kind,
                              std::uint64_t payload) {
    events.push(Event{t, seq++, kind, payload});
  };
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    push_event(arrivals[i], Event::kArrival, i);
  }

  // Per-replica in-flight batch (request ids) and its completion time.
  std::vector<std::vector<std::uint64_t>> inflight(s.replicas.size());
  std::vector<double> busy_until(s.replicas.size(), 0.0);
  std::uint64_t next_batch_id = 0;
  std::size_t pending_activations = 0;
  double last_dispatch = 0.0;
  double last_event_time = arrivals.empty() ? 0.0 : arrivals.back();
  Tensor batch_input;  // grow-on-demand coalescing buffer

  const std::size_t sample_numel = pool.sample_numel();
  const Shape sample_shape = pool.sample_shape();
  const auto coalesce = [&](const std::vector<PendingRequest>& batch) {
    std::vector<std::size_t> dims;
    dims.push_back(batch.size());
    for (const std::size_t d : sample_shape.dims()) dims.push_back(d);
    batch_input = Tensor(Shape(dims));
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const std::size_t src = batch[b].id % pool.size();
      std::memcpy(batch_input.data() + b * sample_numel,
                  pool.images.data() + src * sample_numel,
                  sample_numel * sizeof(float));
    }
  };

  const auto earliest_free = [&](double now) {
    // Earliest instant some ACTIVE replica is free: now if one is idle,
    // otherwise the soonest in-flight completion.
    double t = -1.0;
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      if (!s.replicas[i].active) continue;
      const double free_at = s.replicas[i].busy ? busy_until[i] : now;
      if (t < 0.0 || free_at < t) t = free_at;
    }
    return t < 0.0 ? now : t;
  };

  const auto try_dispatch = [&](double now) {
    for (;;) {
      if (!batcher.should_dispatch(now)) break;
      // Lowest-index free active replica — a deterministic choice.
      std::size_t r = s.replicas.size();
      for (std::size_t i = 0; i < s.replicas.size(); ++i) {
        if (s.replicas[i].active && !s.replicas[i].busy) {
          r = i;
          break;
        }
      }
      if (r == s.replicas.size()) break;  // all busy: dispatch rides on kDone

      std::vector<PendingRequest> batch = batcher.take_batch();
      s.depth_gauge.set(static_cast<std::int64_t>(batcher.depth()));
      obs::monitor::hook_serve_queue(
          now, static_cast<std::int64_t>(batcher.depth()));
      const std::size_t B = batch.size();
      const double service =
          s.device.data_copy_seconds(B) + s.device.infer_seconds(B);
      const std::uint64_t batch_id = next_batch_id++;
      last_dispatch = now;
      s.batch_hist.observe(static_cast<double>(B));
      ++result.batches;

      if (config_.run_model) {
        coalesce(batch);
        s.replicas[r].net->infer(batch_input);
      }

      inflight[r].clear();
      for (const PendingRequest& p : batch) {
        inflight[r].push_back(p.id);
        RequestRecord& rec = result.requests[p.id];
        rec.replica = static_cast<std::int64_t>(r);
        rec.batch_id = batch_id;
        rec.batch_size = B;
        rec.dispatch = now;
        if (traced) {
          obs::instant_v(kServeCategory, kDispatchEvent, now,
                         static_cast<std::int64_t>(r),
                         static_cast<double>(p.id),
                         static_cast<double>(batch_id));
        }
      }
      if (traced) {
        obs::complete_v(kServeCategory, kBatchSpan, now, service,
                        static_cast<std::int64_t>(r),
                        static_cast<double>(B));
      }
      s.replicas[r].busy = true;
      busy_until[r] = now + service;
      push_event(now + service, Event::kDone, r);
    }
    // Partial batch waiting on the delay rule with a free replica: arm the
    // (lazy, re-checked) delay timer.
    if (!batcher.empty() && !batcher.should_dispatch(now)) {
      for (std::size_t i = 0; i < s.replicas.size(); ++i) {
        if (s.replicas[i].active && !s.replicas[i].busy) {
          push_event(batcher.next_deadline(), Event::kTimer, 0);
          break;
        }
      }
    }
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const double now = ev.t;
    // The event loop is the serve layer's single-threaded virtual clock:
    // events pop in nondecreasing time order, so each tick can close any
    // monitor windows the clock just crossed.
    obs::monitor::hook_tick(now);
    switch (ev.kind) {
      case Event::kArrival: {
        RequestRecord& rec = result.requests[ev.payload];
        s.requests_ctr.add(1);
        bool admitted = true;
        if (config_.admission.enabled) {
          admitted = admission_feasible(
              now, rec.deadline, batcher.depth(), s.active_count,
              earliest_free(now), policy, full_service, full_reply);
        }
        if (!admitted) {
          rec.outcome = Outcome::kShed;
          ++result.shed;
          s.shed_ctr.add(1);
          if (traced) {
            obs::instant_v(kServeCategory, kShedEvent, now, obs::kNoRank,
                           static_cast<double>(rec.id),
                           static_cast<double>(batcher.depth()));
          }
        } else {
          batcher.push(PendingRequest{rec.id, now, rec.deadline});
          s.depth_gauge.set(static_cast<std::int64_t>(batcher.depth()));
          obs::monitor::hook_serve_queue(
              now, static_cast<std::int64_t>(batcher.depth()));
          result.peak_queue_depth =
              std::max(result.peak_queue_depth, batcher.depth());
          if (traced) {
            obs::instant_v(kServeCategory, kEnqueueEvent, now, obs::kNoRank,
                           static_cast<double>(rec.id), rec.deadline);
          }
          // Autoscale up: the queue is deeper than the policy tolerates and
          // headroom remains. The new replica restores its checkpoint and
          // joins after the activation delay.
          if (config_.autoscale.enabled &&
              batcher.depth() > config_.autoscale.scale_up_queue_depth &&
              s.active_count + pending_activations <
                  config_.autoscale.max_replicas) {
            ++pending_activations;
            push_event(now + config_.autoscale.activation_delay_s,
                       Event::kActivate, 0);
          }
        }
        try_dispatch(now);
        break;
      }
      case Event::kTimer:
        try_dispatch(now);
        break;
      case Event::kDone: {
        const std::size_t r = ev.payload;
        const std::size_t B = inflight[r].size();
        const double reply_t = now + s.device.reply_seconds(B);
        if (traced) {
          obs::complete_v(kServeCategory, kReplySpan, now, reply_t - now,
                          static_cast<std::int64_t>(r),
                          static_cast<double>(B));
        }
        for (const std::uint64_t id : inflight[r]) {
          RequestRecord& rec = result.requests[id];
          rec.outcome = Outcome::kServed;
          rec.done = now;
          rec.reply = reply_t;
          ++result.served;
          s.served_ctr.add(1);
          s.latency_hist.observe(rec.latency() * 1e6);
          if (!rec.within_deadline()) {
            ++result.deadline_misses;
            s.miss_ctr.add(1);
          }
          obs::monitor::hook_serve_reply(reply_t, rec.latency(),
                                         !rec.within_deadline());
          if (traced) {
            obs::instant_v(kServeCategory, kReplyEvent, reply_t,
                           static_cast<std::int64_t>(r),
                           static_cast<double>(rec.id), rec.latency());
          }
        }
        inflight[r].clear();
        s.replicas[r].busy = false;
        last_event_time = std::max(last_event_time, reply_t);
        // Autoscale down: sustained idle with an empty queue releases the
        // highest-index free replica (weights stay resident for re-use).
        if (config_.autoscale.enabled && batcher.empty() &&
            s.active_count > config_.autoscale.min_replicas &&
            now - last_dispatch >= config_.autoscale.idle_scale_down_s) {
          for (std::size_t i = s.replicas.size(); i-- > 0;) {
            if (s.replicas[i].active && !s.replicas[i].busy) {
              s.replicas[i].active = false;
              --s.active_count;
              ++result.scale_downs;
              s.scale_ctr.add(1);
              if (traced) {
                obs::instant_v(kServeCategory, kScaleDownEvent, now,
                               obs::kNoRank,
                               static_cast<double>(s.active_count), 0.0);
              }
              break;
            }
          }
        }
        try_dispatch(now);
        break;
      }
      case Event::kActivate: {
        --pending_activations;
        if (s.active_count >= config_.autoscale.max_replicas) break;
        std::size_t idx = s.replicas.size();
        for (std::size_t i = 0; i < s.replicas.size(); ++i) {
          if (!s.replicas[i].active) {
            idx = i;
            break;
          }
        }
        if (idx == s.replicas.size()) break;
        if (s.replicas[idx].net == nullptr) {
          s.replicas[idx].net = s.build_replica(config_);
        }
        s.replicas[idx].active = true;
        ++s.active_count;
        ++result.scale_ups;
        s.scale_ctr.add(1);
        if (traced) {
          obs::instant_v(kServeCategory, kScaleUpEvent, now, obs::kNoRank,
                         static_cast<double>(s.active_count), 0.0);
        }
        try_dispatch(now);
        break;
      }
    }
  }

  DS_CHECK(batcher.empty(),
           "serve event loop drained with requests still queued");
  result.duration_s = last_event_time;
  result.final_replicas = s.active_count;
  result.latency_usec = s.latency_hist.window().since(latency_before);
  result.batch_sizes = s.batch_hist.window().since(batch_before);
  result.mean_batch =
      result.batches > 0
          ? static_cast<double>(result.served) /
                static_cast<double>(result.batches)
          : 0.0;
  if (result.duration_s > 0.0) {
    const double within = static_cast<double>(result.served) -
                          static_cast<double>(result.deadline_misses);
    result.goodput_rps = within / result.duration_s;
    result.offered_rps =
        static_cast<double>(arrivals.size()) / result.duration_s;
  }
  result.shed_rate =
      arrivals.empty() ? 0.0
                       : static_cast<double>(result.shed) /
                             static_cast<double>(arrivals.size());
  s.depth_gauge.set(0);
  obs::monitor::hook_run_finalize(last_event_time);
  return result;
}

}  // namespace ds::serve
