#include "serve/batcher.hpp"

#include "support/error.hpp"

namespace ds::serve {

bool admission_feasible(double now, double deadline, std::size_t queued_ahead,
                        std::size_t active_replicas, double earliest_free,
                        const BatchPolicy& policy, double full_batch_service_s,
                        double reply_s) {
  DS_CHECK(active_replicas > 0, "admission needs at least one active replica");
  DS_CHECK(policy.max_batch > 0, "max_batch must be positive");
  const std::size_t batches_ahead =
      (queued_ahead + 1 + policy.max_batch - 1) / policy.max_batch;
  const double start_wait = earliest_free > now ? earliest_free - now : 0.0;
  const double drain = static_cast<double>(batches_ahead) *
                       full_batch_service_s /
                       static_cast<double>(active_replicas);
  return now + start_wait + drain + reply_s <= deadline;
}

}  // namespace ds::serve
