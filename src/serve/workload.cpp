#include "serve/workload.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace ds::serve {

const char* arrival_pattern_name(ArrivalPattern p) {
  switch (p) {
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kStep:
      return "step";
  }
  return "?";
}

double WorkloadConfig::rate_at(double t) const {
  switch (pattern) {
    case ArrivalPattern::kPoisson:
      return rate_rps;
    case ArrivalPattern::kBursty: {
      const double burst = burst_rate_rps > 0.0 ? burst_rate_rps : 4.0 * rate_rps;
      const double phase = std::fmod(t, burst_every_s);
      return phase < burst_length_s ? burst : rate_rps;
    }
    case ArrivalPattern::kStep: {
      const double after = step_rate_rps > 0.0 ? step_rate_rps : 4.0 * rate_rps;
      return t < step_at_s ? rate_rps : after;
    }
  }
  return rate_rps;
}

double WorkloadConfig::peak_rate() const {
  switch (pattern) {
    case ArrivalPattern::kPoisson:
      return rate_rps;
    case ArrivalPattern::kBursty: {
      const double burst = burst_rate_rps > 0.0 ? burst_rate_rps : 4.0 * rate_rps;
      return burst > rate_rps ? burst : rate_rps;
    }
    case ArrivalPattern::kStep: {
      const double after = step_rate_rps > 0.0 ? step_rate_rps : 4.0 * rate_rps;
      return after > rate_rps ? after : rate_rps;
    }
  }
  return rate_rps;
}

std::vector<double> generate_arrivals(const WorkloadConfig& config) {
  DS_CHECK(config.rate_rps > 0.0, "workload rate must be positive");
  DS_CHECK(config.duration_s > 0.0, "workload duration must be positive");
  if (config.pattern == ArrivalPattern::kBursty) {
    DS_CHECK(config.burst_every_s > 0.0 &&
                 config.burst_length_s <= config.burst_every_s,
             "burst window must fit inside the burst period");
  }

  // Lewis–Shedler thinning: draw a homogeneous Poisson process at the peak
  // rate, keep each point with probability rate(t)/peak. Exact for any
  // piecewise rate function, and one Rng stream keeps it deterministic.
  Rng rng(config.seed);
  const double peak = config.peak_rate();
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(peak * config.duration_s) + 16);
  double t = 0.0;
  for (;;) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();  // log(0) guard
    t += -std::log(u) / peak;
    if (t >= config.duration_s) break;
    if (rng.uniform() * peak <= config.rate_at(t)) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace ds::serve
