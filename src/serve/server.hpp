// Inference serving front-end (DESIGN.md §12, ROADMAP item 3).
//
// A forward-only server over N model replicas: each replica owns a
// `nn::Network` (optionally restored from a `nn/serialize` checkpoint) and
// is pinned to a simulated device whose timing comes from `simhw::GpuSystem`
// (batch copy-in, forward-fraction flops + launch overhead, reply copy-out).
// Requests come from an open-loop arrival trace (serve/workload.hpp), flow
// through the dynamic batcher + admission control (serve/batcher.hpp), and
// leave as replies or sheds.
//
// The run is a single-threaded discrete-event simulation over VIRTUAL time:
// the event queue is ordered by (time, push sequence), every stochastic
// choice flows through the seeded workload trace, and the model math — the
// real forward passes — never feeds back into timing. Same seed ⇒ identical
// request outcome sequence, batch assignments, and per-replica trace event
// sequences (asserted by tests/serve_test.cpp), exactly like the training
// runners.
//
// Observability: every request lifecycle emits "serve"-category events on
// the virtual timeline —
//   instant "enqueue"  value=id, aux=absolute deadline       (host rank)
//   instant "shed"     value=id, aux=queue depth at shed      (host rank)
//   instant "dispatch" value=id, aux=batch id       (replica rank, t=start)
//   instant "reply"    value=id, aux=latency s      (replica rank, t=reply)
//   span    "infer_batch"  [dispatch, +service]     (replica rank)
//   span    "reply"        [done, +reply]           (replica rank)
//   instant "scale_up"/"scale_down" value=new active count    (host rank)
// — consumed by analysis::request_lifecycle and the trace_report serving
// section. Latencies land in the process-wide `serve.latency_usec` log2
// histogram; per-run views are Histogram windows, never registry resets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/network.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "simhw/gpu_system.hpp"

namespace ds::serve {

/// Reactive replica autoscaler: grow when the queue backs up, shrink after
/// a sustained idle window. Activation is not free — a new replica restores
/// its checkpoint and warms up for activation_delay_s of virtual time, so a
/// burst still pays a reaction latency (the scenario the step/bursty traces
/// probe).
struct AutoscaleConfig {
  bool enabled = false;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 1;
  std::size_t scale_up_queue_depth = 32;  // queue depth that triggers growth
  double activation_delay_s = 10e-3;      // checkpoint restore + warm-up
  double idle_scale_down_s = 50e-3;       // shrink after this long idle
};

struct ServerConfig {
  std::size_t replicas = 1;  // initial active replicas
  BatchPolicy batch;
  AdmissionConfig admission;
  AutoscaleConfig autoscale;
  /// When set, every replica restores its weights from this checkpoint
  /// (the nn/serialize contract the round-trip test pins).
  std::string checkpoint_path;
  /// Run the real forward passes (default). False = timing-only, for pure
  /// scheduling studies at request rates where the math would dominate.
  bool run_model = true;
};

enum class Outcome : std::uint8_t { kShed, kServed };

struct RequestRecord {
  std::uint64_t id = 0;
  double arrival = 0.0;
  double deadline = 0.0;  // absolute virtual deadline
  Outcome outcome = Outcome::kShed;
  std::int64_t replica = -1;
  std::uint64_t batch_id = 0;
  std::size_t batch_size = 0;
  double dispatch = 0.0;  // batch left the queue
  double done = 0.0;      // compute finished
  double reply = 0.0;     // response fully on the host side

  double latency() const { return reply - arrival; }
  bool within_deadline() const {
    return outcome == Outcome::kServed && reply <= deadline;
  }
};

struct ServeResult {
  std::vector<RequestRecord> requests;  // request-id order
  std::size_t served = 0;
  std::size_t shed = 0;
  std::size_t deadline_misses = 0;  // served, but past the deadline
  std::size_t batches = 0;
  double duration_s = 0.0;  // last reply (or last arrival) vtime
  double offered_rps = 0.0;
  double goodput_rps = 0.0;  // served within deadline, per virtual second
  double shed_rate = 0.0;
  double mean_batch = 0.0;
  std::size_t peak_queue_depth = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::size_t final_replicas = 0;

  /// This run's samples only (window deltas of the process instruments).
  obs::HistogramWindow latency_usec;
  obs::HistogramWindow batch_sizes;

  /// Exact latency quantile in milliseconds over the served requests
  /// (sorted per call — test/bench convenience, not a hot path).
  double latency_quantile_ms(double q) const;

  /// FNV-1a over the per-request outcome sequence (outcome, replica, batch
  /// id) plus the scale-event count — the determinism test's fingerprint.
  std::uint64_t outcome_digest() const;
};

class Server {
 public:
  /// The factory builds each replica's network; `device` prices its
  /// compute and transfers. Replica construction happens up front for the
  /// initial replicas and at activation time for autoscaled ones.
  Server(NetworkFactory factory, const GpuSystem& device, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve one arrival trace. Request i's input sample is pool image
  /// (i mod pool.size). Reentrant: each run() resets the virtual clock and
  /// per-run state but keeps the replicas (and their weights) warm.
  ServeResult run(const std::vector<double>& arrivals, const Dataset& pool);

  const ServerConfig& config() const { return config_; }
  std::size_t active_replicas() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServerConfig config_;
};

}  // namespace ds::serve
