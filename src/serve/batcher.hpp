// Dynamic batcher + admission control for the serving front-end.
//
// The batcher is the pure decision core of the server (DESIGN.md §12): a
// FIFO of admitted-but-undispatched requests plus the two dispatch rules
// and the deadline-feasibility admission rule. It knows nothing about
// events, replicas, or tracing — the Server drives it with virtual times —
// which is what makes the state machine unit-testable in isolation.
//
// Dispatch rules (a batch leaves when a replica is free AND):
//   size rule   — the queue holds a full policy.max_batch, or
//   delay rule  — the oldest queued request has waited policy.
//                 max_queue_delay_s (partial batches ship rather than
//                 starving under light load).
//
// Admission rule (shed-on-arrival, open-loop overload protection): estimate
// the request's completion time assuming every queued request ahead of it
// ships in full batches spread across the active replicas, and shed iff the
// estimate busts the request's absolute deadline. Shedding at arrival keeps
// the queue depth deadline-feasible by construction: admitted requests are
// never evicted later, so under 2× overload the queue stays bounded and the
// p99 of *admitted* requests stays inside the deadline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace ds::serve {

struct BatchPolicy {
  std::size_t max_batch = 8;        // coalesce at most this many requests
  double max_queue_delay_s = 2e-3;  // oldest request waits at most this
};

struct AdmissionConfig {
  bool enabled = true;
  double deadline_s = 20e-3;  // per-request completion budget from arrival
};

/// One admitted, undispatched request.
struct PendingRequest {
  std::uint64_t id = 0;
  double arrival = 0.0;   // virtual seconds
  double deadline = 0.0;  // absolute virtual deadline (arrival + budget)
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy) : policy_(policy) {}

  const BatchPolicy& policy() const { return policy_; }

  void push(PendingRequest r) { queue_.push_back(r); }

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  double oldest_arrival() const { return queue_.front().arrival; }

  /// True when a batch should leave NOW (given a free replica): the size
  /// rule or the delay rule fires.
  bool should_dispatch(double now) const {
    if (queue_.empty()) return false;
    if (queue_.size() >= policy_.max_batch) return true;
    return now >= queue_.front().arrival + policy_.max_queue_delay_s;
  }

  /// When the queue is non-empty but not yet dispatchable, the virtual time
  /// at which the delay rule will trip for the current head.
  double next_deadline() const {
    return queue_.front().arrival + policy_.max_queue_delay_s;
  }

  /// Pop the next batch (up to max_batch requests, FIFO order).
  std::vector<PendingRequest> take_batch() {
    std::vector<PendingRequest> batch;
    const std::size_t n =
        queue_.size() < policy_.max_batch ? queue_.size() : policy_.max_batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    return batch;
  }

 private:
  BatchPolicy policy_;
  std::deque<PendingRequest> queue_;
};

/// The deadline-feasibility admission estimate for a request arriving at
/// `now` with absolute deadline `deadline`:
///
///   batches_ahead = ceil((queued_ahead + 1) / max_batch)   — this request
///                   rides in the last of them;
///   est_done      = now + max(0, earliest_free − now)       — wait for a
///                 + batches_ahead · full_batch_service_s      replica,
///                     / active_replicas                     — drain ahead,
///                 + reply_s                                 — ship the
///                                                             response.
///
/// Returns true (admit) iff est_done ≤ deadline. Deliberately conservative:
/// partial batches ahead are costed as full ones, so the rule sheds a
/// little early rather than admitting requests it will serve late.
bool admission_feasible(double now, double deadline, std::size_t queued_ahead,
                        std::size_t active_replicas, double earliest_free,
                        const BatchPolicy& policy, double full_batch_service_s,
                        double reply_s);

}  // namespace ds::serve
