// Open-loop request arrival traces for the serving front-end (ROADMAP item
// 3: the "millions of users" workload).
//
// Open-loop means arrivals do NOT wait for the server: the trace is fixed
// before the run, so an overloaded server faces an ever-growing backlog
// instead of the closed-loop coordination that hides overload (the classic
// load-testing pitfall). Every trace is virtual-time — a sorted vector of
// arrival instants in virtual seconds — and generated from a single seed
// through ds::Rng, so the same config reproduces the same trace bit for bit
// and a serving run is replayable end to end (no wall clocks anywhere).
//
// Patterns:
//   kPoisson — stationary Poisson process at rate_rps (i.i.d. exponential
//              gaps), the steady-traffic baseline.
//   kBursty  — periodic on/off modulation: rate_rps outside bursts,
//              burst_rate_rps inside [k·burst_every_s, k·burst_every_s +
//              burst_length_s) windows. The load-spike / overload trace.
//   kStep    — rate_rps before step_at_s, step_rate_rps after. The
//              autoscaler's reaction-time trace.
//
// The time-varying patterns use Lewis–Shedler thinning against the peak
// rate, so gaps never straddle a rate boundary incorrectly.
#pragma once

#include <cstdint>
#include <vector>

namespace ds::serve {

enum class ArrivalPattern { kPoisson, kBursty, kStep };

const char* arrival_pattern_name(ArrivalPattern p);

struct WorkloadConfig {
  ArrivalPattern pattern = ArrivalPattern::kPoisson;
  double rate_rps = 1000.0;  // base arrival rate, requests per virtual second
  double duration_s = 1.0;   // trace length in virtual seconds
  std::uint64_t seed = 1;

  // kBursty knobs. burst_rate_rps == 0 defaults to 4× the base rate.
  double burst_rate_rps = 0.0;
  double burst_every_s = 0.25;
  double burst_length_s = 0.05;

  // kStep knobs. step_rate_rps == 0 defaults to 4× the base rate.
  double step_rate_rps = 0.0;
  double step_at_s = 0.5;

  /// The instantaneous rate at virtual time t under this config.
  double rate_at(double t) const;
  /// The peak instantaneous rate (the thinning envelope).
  double peak_rate() const;
};

/// Generate the sorted arrival instants in [0, duration_s). Deterministic:
/// identical config ⇒ identical trace.
std::vector<double> generate_arrivals(const WorkloadConfig& config);

}  // namespace ds::serve
