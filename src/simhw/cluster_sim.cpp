#include "simhw/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "comm/collectives.hpp"
#include "obs/monitor/monitor.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ds {

ClusterSim::ClusterSim(ClusterSimConfig config) : config_(config) {
  DS_CHECK(config_.base_iter_seconds > 0, "base iteration time must be > 0");
  DS_CHECK(config_.weight_bytes > 0, "weight bytes must be > 0");
  DS_CHECK(config_.overlap_fraction >= 0 && config_.overlap_fraction <= 1,
           "overlap fraction out of [0,1]");
}

double ClusterSim::allreduce_seconds(std::size_t nodes,
                                     Schedule schedule) const {
  if (nodes <= 1) return 0.0;
  const double log_p = std::log2(static_cast<double>(nodes));
  LinkModel link = config_.network;
  link.beta *= 1.0 + config_.bandwidth_contention * log_p;

  const double rounds = 2.0 * static_cast<double>(tree_rounds(nodes));
  if (schedule == Schedule::kOurs) {
    // One packed message per hop (§5.2).
    return rounds * link.transfer_seconds(config_.weight_bytes);
  }
  // Per-layer schedule: pays α once per learnable tensor per hop, and the
  // smaller messages stream below the packed bandwidth.
  const double per_hop =
      static_cast<double>(config_.comm_layers) * link.alpha +
      link.beta * config_.per_layer_beta_penalty * config_.weight_bytes;
  return rounds * per_hop;
}

WeakScalingPoint ClusterSim::run(std::size_t nodes, std::size_t iterations,
                                 Schedule schedule) const {
  DS_CHECK(nodes > 0 && iterations > 0, "empty simulation");
  // One RNG stream per node so jitter draws are independent of node count
  // ordering; seeds derive from the config seed and node index.
  Rng base(config_.seed);
  std::vector<Rng> node_rng;
  node_rng.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) node_rng.push_back(base.fork(n));

  const bool faults_on = config_.faults.active();
  const double comm_full = allreduce_seconds(nodes, schedule);
  std::vector<bool> alive(nodes, true);
  std::size_t n_alive = nodes;
  obs::monitor::hook_run_begin(static_cast<std::int64_t>(nodes));
  std::vector<double> step_secs(nodes, 0.0);

  double total = 0.0;
  double comm_total = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    if (faults_on) {
      // Scheduled node crashes: the dead node leaves the allreduce group
      // and the survivors carry on (graceful degradation at cluster scale).
      for (std::size_t n = 0; n < nodes; ++n) {
        if (alive[n] && config_.faults.crash_time(n) <= total) {
          alive[n] = false;
          --n_alive;
          obs::monitor::hook_failure(static_cast<std::int64_t>(n), total,
                                     "scheduled crash");
        }
      }
      if (n_alive == 0) break;
    }
    const double comm =
        faults_on ? allreduce_seconds(n_alive, schedule) : comm_full;
    // Synchronous step waits for the slowest node.
    double slowest = 0.0;
    for (std::size_t n = 0; n < nodes; ++n) {
      if (!alive[n]) continue;
      const double jitter =
          std::exp(config_.jitter_sigma * node_rng[n].gaussian());
      double step = config_.base_iter_seconds * jitter;
      if (faults_on) step *= config_.faults.straggler_for(n);
      step_secs[n] = step;
      slowest = std::max(slowest, step);
    }
    double exposed_comm = comm;
    if (schedule == Schedule::kOurs) {
      // §6.1.3: GPU-GPU (here node-node) traffic overlaps with the next
      // iteration's compute; only the residual is exposed.
      exposed_comm = comm * (1.0 - config_.overlap_fraction);
    }
    total += slowest + exposed_comm;
    comm_total += exposed_comm;
    // Each node's OWN step draw (pre-barrier) is the straggler signal; the
    // stamp is the synchronous post-iteration clock shared by all nodes.
    if (obs::monitor::enabled()) {
      for (std::size_t n = 0; n < nodes; ++n) {
        if (!alive[n]) continue;
        obs::monitor::hook_step(static_cast<std::int64_t>(n), total,
                                step_secs[n]);
      }
    }
  }

  obs::monitor::hook_run_finalize(total);

  WeakScalingPoint point;
  point.nodes = nodes;
  point.cores = nodes * config_.cores_per_node;
  point.seconds = total;
  point.comm_seconds = comm_total;
  point.efficiency = 1.0;  // filled by sweep()
  point.surviving_nodes = n_alive;
  return point;
}

std::vector<WeakScalingPoint> ClusterSim::sweep(
    const std::vector<std::size_t>& nodes, std::size_t iterations,
    Schedule schedule) const {
  std::vector<WeakScalingPoint> points;
  points.reserve(nodes.size());
  for (const std::size_t n : nodes) {
    points.push_back(run(n, iterations, schedule));
  }
  if (!points.empty()) {
    const double base = points.front().seconds;
    for (auto& p : points) p.efficiency = base / p.seconds;
  }
  return points;
}

}  // namespace ds
