// Knights Landing chip model (paper §2.1, §6.2, Figure 12).
//
// Models the memory system that drives the chip-partitioning experiment:
// 16 GB of MCDRAM at ~475 GB/s backed by 384 GB DDR4 at ~90 GB/s, and the
// Quad/SNC-style partitioning of the chip into P groups, each holding its
// own weight copy and data copy (§6.2's divide-and-conquer).
//
// Effects captured, matching the paper's explanation of Figure 12:
//   * More partitions ⇒ better locality: in A2A mode (P=1) every memory
//     access hashes across all tag directories; partitioned (quad/SNC-like)
//     operation keeps accesses NUMA-local, raising effective bandwidth.
//   * Each partition streams its own weight copy, so weight traffic stays
//     in fast memory — until P copies of (weights + data) no longer fit in
//     MCDRAM, at which point the spilled fraction runs at DDR speed and the
//     curve turns back up (P=32 for AlexNet+Cifar sizes).
//   * Per-round gradient tree-reduction across partitions costs
//     ceil(log2 P) MCDRAM-speed hops.
#pragma once

#include <cstddef>

#include "comm/cost_model.hpp"

namespace ds {

/// MCDRAM operating modes (paper Figure 2).
enum class McdramMode {
  kCache,   // MCDRAM is the last-level cache: transparent, but every access
            // pays the tag lookup and misses pay MCDRAM + DDR
  kFlat,    // MCDRAM is addressable memory: software places data explicitly
            // (what the §6.2 partitioning strategy assumes)
  kHybrid,  // half cache, half flat
};

const char* mcdram_mode_name(McdramMode mode);

/// On-chip clustering modes (paper §2.1). They determine how NUMA-local a
/// partition's memory traffic can be: all-to-all hashes every address
/// across all tag directories; quadrant keeps directory traffic inside a
/// quadrant; SNC-4 additionally exposes quadrants as NUMA nodes so pinned
/// software (the §6.2 partitions) reaches full locality.
enum class KnlClusterMode { kAll2All, kQuadrant, kSnc4 };

const char* knl_cluster_mode_name(KnlClusterMode mode);

struct KnlChipConfig {
  std::size_t cores = 68;
  double chip_flops = 1.5e12;     // effective DNN throughput, whole chip
  double mcdram_bytes = 16.0 * (1ULL << 30);
  double ddr_bytes = 384.0 * (1ULL << 30);
  double mcdram_bandwidth = 475.0e9;  // §2.1 STREAM measurement
  double ddr_bandwidth = 90.0e9;      // §2.1
  // Locality factor of effective bandwidth: fraction of peak reached with a
  // single all-to-all partition (addresses hashed across all tag
  // directories, §2.1) vs fully partitioned NUMA-local operation.
  double a2a_locality = 0.25;
  double partitioned_locality = 1.0;
  std::size_t full_locality_parts = 16;  // locality saturates here
  // Shape of the locality ramp in log2(parts): >1 makes the first few
  // partitions help less than the last doubling (quad mode only pins four
  // groups; SNC-4 with software pinning is where most of the win arrives).
  double locality_ramp_exponent = 2.0;
  // Spilled (beyond-MCDRAM) traffic crosses the mesh to DDR from many
  // partitions at once; contention + remote NUMA access divides the usable
  // DDR bandwidth.
  double ddr_spill_penalty = 3.0;
  // Cache-mode MCDRAM hits pay the tag-directory overhead relative to flat
  // mode's direct access (Figure 2 trade-off).
  double cache_mode_hit_efficiency = 0.88;
};

class KnlChip {
 public:
  explicit KnlChip(KnlChipConfig config = {});

  const KnlChipConfig& config() const { return config_; }

  /// Total bytes resident when the chip is split into `parts` groups, each
  /// holding one weight copy and one data copy.
  double footprint_bytes(std::size_t parts, double weight_bytes,
                         double data_bytes) const;

  /// Fraction of the working set that fits in MCDRAM (1.0 until the
  /// footprint exceeds 16 GB, then shrinking).
  double mcdram_resident_fraction(std::size_t parts, double weight_bytes,
                                  double data_bytes) const;

  /// Effective streaming bandwidth for one partition's traffic, combining
  /// the locality ramp (A2A → SNC) and the MCDRAM/DDR blend. Assumes flat
  /// mode (explicit placement, the §6.2 strategy).
  double effective_bandwidth(std::size_t parts, double weight_bytes,
                             double data_bytes) const;

  /// Locality factor a given clustering mode can reach for pinned software
  /// (the discrete anchors the continuous partition ramp interpolates).
  double cluster_mode_locality(KnlClusterMode mode) const;

  /// Effective bandwidth of a working set under each MCDRAM mode, at full
  /// partitioning (Figure 2's trade-off):
  ///   flat   — explicit placement: MCDRAM up to capacity, spill to DDR;
  ///   cache  — transparent: hits pay a directory-overhead factor, misses
  ///            pay DDR + the MCDRAM fill;
  ///   hybrid — half the MCDRAM behaves each way.
  double mode_bandwidth(McdramMode mode, double working_set_bytes) const;

  /// Seconds for one synchronous round in which each of `parts` partitions
  /// trains `batch_per_part` samples of a model with the given per-sample
  /// flops and byte traffic, then tree-reduces gradients across partitions.
  /// Compute and memory streaming overlap (roofline max).
  double round_seconds(std::size_t parts, std::size_t batch_per_part,
                       double flops_per_sample, double bytes_per_sample,
                       double weight_bytes, double data_bytes) const;

 private:
  KnlChipConfig config_;
};

}  // namespace ds
