// Discrete-event weak-scaling simulator for Table 4 (ImageNet on 68→4352
// KNL cores, i.e. 1→64 nodes of NERSC Cori).
//
// Per synchronous iteration each node draws a compute time (base time ×
// lognormal jitter — OS noise and load imbalance, the dominant loss at
// scale), then the cluster pays a tree allreduce of the model over the
// Aries-like network. Two communication schedules are modelled:
//
//   Schedule::kOurs      — packed single-message tree allreduce (§5.2) with
//                          partial communication/computation overlap (§6.1.3)
//   Schedule::kCaffeLike — per-layer messages (one α per learnable tensor),
//                          no overlap: the Intel-Caffe-style baseline the
//                          paper compares against. Single-node performance
//                          is identical by construction (§7.1: "we have the
//                          same single-node performance with Intel Caffe").
//
// Weak scaling: data grows with node count, per-node batch fixed, so
// efficiency(P) = T(1 node) / T(P nodes) for the same iteration count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/fault.hpp"

namespace ds {

enum class Schedule { kOurs, kCaffeLike };

struct ClusterSimConfig {
  double base_iter_seconds = 5.11;   // single-node compute per iteration
  double weight_bytes = 27.2e6;      // full model size on the wire
  std::size_t comm_layers = 59;      // messages of a per-layer schedule
  std::size_t cores_per_node = 68;
  // Effective per-node MPI large-message bandwidth on the Aries fabric
  // (~3 GB/s for 2017-era MPI allreduce, well below the 9 GB/s injection
  // peak), α from the link model. Calibrated jointly with the knobs below
  // against Table 4's four anchor efficiencies (GoogLeNet/VGG × ours/Caffe
  // at 2176 cores).
  LinkModel network{"Cray Aries (MPI effective)", 1.3e-6, 1.0 / 3.0e9};
  double jitter_sigma = 0.033;       // lognormal σ of per-node compute noise
  // Effective bandwidth degrades as allreduce traffic converges through the
  // dragonfly: β_eff = β · (1 + contention · log2 P).
  double bandwidth_contention = 0.25;
  double overlap_fraction = 0.35;    // comm hidden under compute (ours only)
  // The per-layer baseline additionally moves its many smaller messages at
  // a fraction of the packed streaming bandwidth (same effect as
  // GpuSystemConfig::per_layer_beta_penalty, §5.2's second reason).
  double per_layer_beta_penalty = 1.8;
  std::uint64_t seed = 20170917;
  // Fault injection at cluster scale: straggler factors multiply a node's
  // per-iteration compute draw; a node whose scheduled crash time passes
  // drops out and the survivors keep going with a smaller allreduce (the
  // weak-scaling analogue of the algorithm layer's graceful degradation).
  // An inactive plan reproduces the fault-free numbers exactly.
  FaultPlan faults;
};

struct WeakScalingPoint {
  std::size_t nodes = 0;
  std::size_t cores = 0;
  double seconds = 0.0;      // total time for the iteration budget
  double efficiency = 0.0;   // T(1) / T(nodes)
  double comm_seconds = 0.0; // un-hidden communication time included above
  std::size_t surviving_nodes = 0;  // nodes still alive at the end
};

class ClusterSim {
 public:
  explicit ClusterSim(ClusterSimConfig config);

  /// Simulate `iterations` synchronous steps on `nodes` nodes.
  WeakScalingPoint run(std::size_t nodes, std::size_t iterations,
                       Schedule schedule) const;

  /// Sweep node counts (efficiency normalised to the first entry).
  std::vector<WeakScalingPoint> sweep(const std::vector<std::size_t>& nodes,
                                      std::size_t iterations,
                                      Schedule schedule) const;

  /// Seconds of one allreduce of the model across `nodes` nodes under the
  /// given schedule (before any overlap).
  double allreduce_seconds(std::size_t nodes, Schedule schedule) const;

 private:
  ClusterSimConfig config_;
};

}  // namespace ds
