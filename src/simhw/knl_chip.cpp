#include "simhw/knl_chip.hpp"

#include <algorithm>
#include <cmath>

#include "comm/collectives.hpp"
#include "support/error.hpp"

namespace ds {

const char* mcdram_mode_name(McdramMode mode) {
  switch (mode) {
    case McdramMode::kCache: return "cache";
    case McdramMode::kFlat: return "flat";
    case McdramMode::kHybrid: return "hybrid";
  }
  return "?";
}

const char* knl_cluster_mode_name(KnlClusterMode mode) {
  switch (mode) {
    case KnlClusterMode::kAll2All: return "all-to-all";
    case KnlClusterMode::kQuadrant: return "quadrant";
    case KnlClusterMode::kSnc4: return "SNC-4";
  }
  return "?";
}

KnlChip::KnlChip(KnlChipConfig config) : config_(config) {
  DS_CHECK(config_.cores > 0 && config_.chip_flops > 0,
           "KNL config must be positive");
  DS_CHECK(config_.a2a_locality > 0 && config_.a2a_locality <= 1.0,
           "a2a locality must be in (0,1]");
}

double KnlChip::footprint_bytes(std::size_t parts, double weight_bytes,
                                double data_bytes) const {
  return static_cast<double>(parts) * (weight_bytes + data_bytes);
}

double KnlChip::mcdram_resident_fraction(std::size_t parts,
                                         double weight_bytes,
                                         double data_bytes) const {
  const double footprint = footprint_bytes(parts, weight_bytes, data_bytes);
  DS_CHECK(footprint <= config_.ddr_bytes,
           "working set exceeds even DDR capacity");
  if (footprint <= config_.mcdram_bytes) return 1.0;
  return config_.mcdram_bytes / footprint;
}

double KnlChip::effective_bandwidth(std::size_t parts, double weight_bytes,
                                    double data_bytes) const {
  // Locality ramps linearly in log2(parts) from the A2A floor to full
  // NUMA-local bandwidth at full_locality_parts.
  const double log_parts = std::log2(static_cast<double>(std::max<std::size_t>(parts, 1)));
  const double log_full =
      std::log2(static_cast<double>(config_.full_locality_parts));
  const double ramp = std::pow(std::clamp(log_parts / log_full, 0.0, 1.0),
                               config_.locality_ramp_exponent);
  const double locality =
      config_.a2a_locality +
      (config_.partitioned_locality - config_.a2a_locality) * ramp;

  const double resident =
      mcdram_resident_fraction(parts, weight_bytes, data_bytes);
  // Traffic splits by residency: resident fraction streams from MCDRAM, the
  // spill crosses the mesh to (contended) DDR; aggregate via the harmonic
  // (time-weighted) mean.
  const double mc = config_.mcdram_bandwidth * locality;
  const double dd = config_.ddr_bandwidth /
                    (resident < 1.0 ? config_.ddr_spill_penalty : 1.0);
  const double time_per_byte = resident / mc + (1.0 - resident) / dd;
  return 1.0 / time_per_byte;
}

double KnlChip::cluster_mode_locality(KnlClusterMode mode) const {
  switch (mode) {
    case KnlClusterMode::kAll2All:
      return config_.a2a_locality;
    case KnlClusterMode::kQuadrant:
      // Directory traffic stays in-quadrant but software is not pinned:
      // midway up the ramp.
      return config_.a2a_locality +
             0.5 * (config_.partitioned_locality - config_.a2a_locality);
    case KnlClusterMode::kSnc4:
      return config_.partitioned_locality;
  }
  return config_.a2a_locality;
}

double KnlChip::mode_bandwidth(McdramMode mode,
                               double working_set_bytes) const {
  DS_CHECK(working_set_bytes > 0, "empty working set");
  const double mc = config_.mcdram_bandwidth;
  const double dd = config_.ddr_bandwidth;
  switch (mode) {
    case McdramMode::kFlat: {
      const double resident =
          std::min(1.0, config_.mcdram_bytes / working_set_bytes);
      return 1.0 / (resident / mc + (1.0 - resident) / dd);
    }
    case McdramMode::kCache: {
      // Streaming hit rate ≈ cached fraction of the working set; hits pay
      // the directory overhead, misses pay the DDR fetch plus the fill.
      const double hit =
          std::min(1.0, config_.mcdram_bytes / working_set_bytes);
      const double hit_time = 1.0 / (mc * config_.cache_mode_hit_efficiency);
      const double miss_time = 1.0 / dd + 1.0 / mc;
      return 1.0 / (hit * hit_time + (1.0 - hit) * miss_time);
    }
    case McdramMode::kHybrid: {
      // Half the traffic sees each behaviour with half the capacity.
      KnlChipConfig half = config_;
      half.mcdram_bytes = config_.mcdram_bytes / 2.0;
      const KnlChip half_chip(half);
      const double flat =
          half_chip.mode_bandwidth(McdramMode::kFlat, working_set_bytes / 2.0);
      const double cache = half_chip.mode_bandwidth(McdramMode::kCache,
                                                    working_set_bytes / 2.0);
      return 1.0 / (0.5 / flat + 0.5 / cache);
    }
  }
  return dd;
}

double KnlChip::round_seconds(std::size_t parts, std::size_t batch_per_part,
                              double flops_per_sample,
                              double bytes_per_sample, double weight_bytes,
                              double data_bytes) const {
  DS_CHECK(parts > 0, "need at least one partition");
  const double samples =
      static_cast<double>(parts) * static_cast<double>(batch_per_part);
  const double compute = samples * flops_per_sample / config_.chip_flops;

  // Streaming traffic: every sample touches its bytes, and each partition
  // re-streams its weight copy once per round (amortised over its batch).
  const double traffic =
      samples * bytes_per_sample + static_cast<double>(parts) * weight_bytes;
  const double memory =
      traffic / effective_bandwidth(parts, weight_bytes, data_bytes);

  // Gradient tree-sum across partitions at MCDRAM speed (§6.2's conquer
  // step): ceil(log2 P) hops of one weight-sized message.
  const LinkModel mc = knl_mcdram();
  const double reduce = 2.0 * static_cast<double>(tree_rounds(parts)) *
                        mc.transfer_seconds(weight_bytes);

  return std::max(compute, memory) + reduce;
}

}  // namespace ds
