// Timing model of one multi-GPU node (paper §6.1, Table 3 setup: 4 GPUs on
// a PCIe switch, host CPU as the EASGD master).
//
// The trained networks in this repo are scaled down so one CPU core can run
// them; iteration *timing* is therefore charged from the paper-scale model
// metadata (PaperModelInfo: real weight bytes + real flops) against this
// hardware model. Learning dynamics (accuracy per iteration) come from the
// real math; time per iteration comes from here. That separation is what
// lets a laptop-scale build reproduce the paper's time-based figures.
//
// Rates are calibrated so LeNet/MNIST at batch 64 lands near Table 3's
// per-iteration times (~6 ms forward+backward, ~3.5 ms per 1.7 MB weight
// hop): effective GPU throughput 75 GFLOP/s (small-kernel LeNet on a K80 is
// nowhere near peak), effective host-link bandwidth 1 GB/s for pageable
// per-tensor copies.
#pragma once

#include <cstddef>

#include "comm/collectives.hpp"
#include "comm/cost_model.hpp"
#include "nn/models.hpp"

namespace ds {

struct GpuSystemConfig {
  std::size_t gpus = 4;
  double gpu_flops = 7.5e10;          // effective DNN throughput per GPU
  double cpu_flops = 5.2e10;          // host-side update throughput
  double gpu_memory_bytes = 12.0 * (1ULL << 30);  // one K80 half
  LinkModel host_link{"PCIe host (effective)", 40.0e-6, 1.0 / 4.5e9};
  LinkModel p2p_link{"PCIe switch P2P (effective)", 20.0e-6, 1.0 / 5.5e9};
  // Per-layer transfers move the same bytes at a fraction of the packed
  // bandwidth: small unpinned copies never saturate the bus (the paper's
  // second reason for §5.2's packing — non-contiguous access). Calibrated
  // against Table 3's Original-EASGD hop time (~3.5 ms per 1.7 MB model).
  double per_layer_beta_penalty = 8.4;
  // Effective cost of Eq.(1)/(2) per weight element, including kernel
  // launch and memory traffic (calibrated: ~0.5 ms per LeNet update).
  double update_flops_per_param = 90.0;
  // Fixed per-iteration kernel-launch/dispatch cost of one forward+backward
  // pass (one launch per layer). This is what makes small batches
  // throughput-inefficient on real GPUs (§7.2).
  double launch_overhead_seconds = 0.4e-3;
  // Fraction of device<->device traffic that overlapping with compute cannot
  // hide (switch contention + launch sync), Sync EASGD3 vs EASGD2 (§6.1.3).
  double overlap_residual = 0.6;
  // Inference serving (src/serve). flops_per_sample in PaperModelInfo is
  // forward+backward; a forward-only pass runs roughly a third of it (one
  // of three GEMM-shaped passes). reply bytes cover the logits plus framing
  // going back over the host link per request.
  double forward_flops_fraction = 1.0 / 3.0;
  double reply_bytes_per_request = 64.0;
};

class GpuSystem {
 public:
  GpuSystem(GpuSystemConfig config, PaperModelInfo model,
            double sample_bytes);

  const GpuSystemConfig& config() const { return config_; }
  const PaperModelInfo& model() const { return model_; }
  std::size_t gpus() const { return config_.gpus; }

  /// Forward+backward of one batch on one GPU (all GPUs run in parallel, so
  /// this is also the per-iteration compute time of the synchronous methods).
  double fwd_bwd_seconds(std::size_t batch) const;

  /// Host -> one device batch copy. Copies to different devices overlap
  /// (independent DMA engines), so this is also the parallel per-iteration
  /// data time.
  double data_copy_seconds(std::size_t batch) const;

  /// Forward-only pass of one coalesced inference batch on one device:
  /// kernel-launch overhead + forward-fraction flops. The launch overhead
  /// is per PASS, not per sample — the term dynamic batching amortises,
  /// and the reason batch-1 serving is throughput-poor on real GPUs
  /// (§7.2's small-batch inefficiency, inverted into the latency story).
  double infer_seconds(std::size_t batch) const;

  /// Device -> host response copy for a batch of replies (latency term
  /// plus the small per-request payload).
  double reply_seconds(std::size_t batch) const;

  /// One full-model hop across the host link (packed = 1 message; per-layer
  /// = model().comm_layers messages, Figure 10 baseline).
  double host_param_hop_seconds(MessageLayout layout) const;

  /// One full-model hop between two devices through the switch.
  double p2p_param_hop_seconds(MessageLayout layout) const;

  /// CPU-rooted collective among {host} ∪ GPUs (ranks = gpus+1).
  /// bytes_factor scales the payload (gradient compression, §3.4 future
  /// work): the latency term is unchanged, the bandwidth term shrinks.
  double host_collective_seconds(CollectiveAlgo algo, MessageLayout layout,
                                 double bytes_factor = 1.0) const;

  /// GPU1-rooted collective among the GPUs only (ranks = gpus).
  double p2p_collective_seconds(CollectiveAlgo algo, MessageLayout layout,
                                double bytes_factor = 1.0) const;

  /// Worker-side Eq. (1) update (on-device rate).
  double gpu_update_seconds() const;

  /// Master-side Eq. (2) update (host rate).
  double cpu_update_seconds() const;

  /// True when one full weight copy fits in device memory — precondition of
  /// Sync EASGD2/3's weights-on-GPU placement (§6.1.2).
  bool weights_fit_on_device() const;

 private:
  double layered_hop(const LinkModel& link, MessageLayout layout,
                     double bytes_factor = 1.0) const;

  GpuSystemConfig config_;
  PaperModelInfo model_;
  double sample_bytes_;
};

}  // namespace ds
