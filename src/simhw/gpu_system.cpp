#include "simhw/gpu_system.hpp"

#include "support/error.hpp"

namespace ds {

GpuSystem::GpuSystem(GpuSystemConfig config, PaperModelInfo model,
                     double sample_bytes)
    : config_(config), model_(std::move(model)), sample_bytes_(sample_bytes) {
  DS_CHECK(config_.gpus > 0, "GpuSystem needs at least one GPU");
  DS_CHECK(config_.gpu_flops > 0 && config_.cpu_flops > 0,
           "compute rates must be positive");
  DS_CHECK(sample_bytes_ > 0, "sample bytes must be positive");
}

double GpuSystem::fwd_bwd_seconds(std::size_t batch) const {
  return config_.launch_overhead_seconds +
         static_cast<double>(batch) * model_.flops_per_sample /
             config_.gpu_flops;
}

double GpuSystem::data_copy_seconds(std::size_t batch) const {
  return config_.host_link.transfer_seconds(static_cast<double>(batch) *
                                            sample_bytes_);
}

double GpuSystem::infer_seconds(std::size_t batch) const {
  return config_.launch_overhead_seconds +
         static_cast<double>(batch) * model_.flops_per_sample *
             config_.forward_flops_fraction / config_.gpu_flops;
}

double GpuSystem::reply_seconds(std::size_t batch) const {
  return config_.host_link.transfer_seconds(
      static_cast<double>(batch) * config_.reply_bytes_per_request);
}

double GpuSystem::layered_hop(const LinkModel& link, MessageLayout layout,
                              double bytes_factor) const {
  const double bytes = model_.weight_bytes * bytes_factor;
  if (layout == MessageLayout::kPacked) {
    return link.transfer_seconds(bytes);
  }
  // Per-layer schedule: one α per learnable tensor, and the many small
  // messages run at a fraction of the packed streaming bandwidth.
  const double layers = static_cast<double>(model_.comm_layers);
  return layers * link.alpha +
         link.beta * config_.per_layer_beta_penalty * bytes;
}

double GpuSystem::host_param_hop_seconds(MessageLayout layout) const {
  return layered_hop(config_.host_link, layout);
}

double GpuSystem::p2p_param_hop_seconds(MessageLayout layout) const {
  return layered_hop(config_.p2p_link, layout);
}

double GpuSystem::host_collective_seconds(CollectiveAlgo algo,
                                          MessageLayout layout,
                                          double bytes_factor) const {
  const std::size_t ranks = config_.gpus + 1;  // host + devices
  const double hop = layered_hop(config_.host_link, layout, bytes_factor);
  const double hops =
      algo == CollectiveAlgo::kLinear
          ? static_cast<double>(ranks - 1)
          : static_cast<double>(tree_rounds(ranks));
  return hops * hop;
}

double GpuSystem::p2p_collective_seconds(CollectiveAlgo algo,
                                         MessageLayout layout,
                                         double bytes_factor) const {
  const std::size_t ranks = config_.gpus;
  const double hop = layered_hop(config_.p2p_link, layout, bytes_factor);
  const double hops =
      algo == CollectiveAlgo::kLinear
          ? static_cast<double>(ranks - 1)
          : static_cast<double>(tree_rounds(ranks));
  return hops * hop;
}

double GpuSystem::gpu_update_seconds() const {
  const double params = model_.weight_bytes / 4.0;
  return params * config_.update_flops_per_param / config_.gpu_flops;
}

double GpuSystem::cpu_update_seconds() const {
  const double params = model_.weight_bytes / 4.0;
  return params * config_.update_flops_per_param / config_.cpu_flops;
}

bool GpuSystem::weights_fit_on_device() const {
  // Weights + gradients + activations headroom; 3× is a conservative bound.
  return 3.0 * model_.weight_bytes < config_.gpu_memory_bytes;
}

}  // namespace ds
