// §7.2 — "The Impact of Batch Size".
//
// The paper's claims, reproduced with real measurements on this library's
// kernels and real training runs:
//   (1) growing the batch speeds up raw throughput because the GEMMs get
//       larger and run more efficiently (measured wall-clock samples/s of
//       forward+backward, no simulation involved);
//   (2) beyond a threshold, larger batches need more epochs to reach the
//       same accuracy (iterations × batch = samples-to-target grows).
#include <cstdio>

#include "core/easgd_rules.hpp"
#include "data/sampler.hpp"
#include "nn/layers.hpp"
#include "support/timer.hpp"
#include "bench_util.hpp"

namespace {

// FC-dominated model: the batch dimension IS the GEMM row count, so BLAS
// efficiency genuinely rises with batch size (the §7.2 claim). The zoo's
// conv nets lower per image and would mask the effect.
std::unique_ptr<ds::Network> make_wide_mlp() {
  ds::Rng rng(7);
  auto net = std::make_unique<ds::Network>(ds::Shape{1, 28, 28});
  net->add(std::make_unique<ds::Flatten>());
  net->add(std::make_unique<ds::FullyConnected>(784, 512));
  net->add(std::make_unique<ds::ReLU>());
  net->add(std::make_unique<ds::FullyConnected>(512, 512));
  net->add(std::make_unique<ds::ReLU>());
  net->add(std::make_unique<ds::FullyConnected>(512, 10));
  net->finalize(rng);
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::Reporter reporter("ablation_batch_size");
  ds::bench::print_header("Ablation (7.2): the impact of batch size");

  const ds::TrainTest data =
      ds::mnist_like(args.has_seed ? args.seed : 42, 2048, 512);
  const double target = 0.92;
  const ds::GpuSystem hw(ds::GpuSystemConfig{}, ds::paper_lenet(),
                         28.0 * 28.0 * 4.0);

  std::printf("%7s %15s %17s %12s %14s %16s\n", "batch", "MLP throughput",
              "device throughput", "iters to", "samples to",
              "time to target");
  std::printf("%7s %15s %17s %12s %14s %16s\n", "", "(samples/s, wall)",
              "(samples/s, virt)", std::to_string(target).substr(0, 4).c_str(),
              "target", "(wall s, LeNet)");

  for (const std::size_t batch : {4UL, 16UL, 64UL, 256UL, 1024UL}) {
    ds::BatchSampler sampler(data.train, batch, 11);
    ds::Tensor images;
    std::vector<std::int32_t> labels;

    // (1) raw throughput of the FC-dominated model: timed forward+backward
    //     over a fixed total sample count (real wall clock, no simulation).
    const auto mlp = make_wide_mlp();
    sampler.next(images, labels);
    mlp->zero_grads();
    mlp->forward_backward(images, labels);  // warm-up
    const std::size_t reps = std::max<std::size_t>(4096 / batch, 1);
    ds::WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r) {
      mlp->zero_grads();
      mlp->forward_backward(images, labels);
    }
    const double throughput =
        static_cast<double>(reps * batch) / timer.seconds();

    // (2) iterations to target accuracy with a fixed learning rate.
    ds::Rng rng2(7);
    const auto train_net = ds::make_lenet_s(rng2);
    std::size_t iters = 0;
    double reached_wall = 0.0;
    bool reached = false;
    ds::WallTimer wall;
    const std::size_t max_iters = 6000 / batch + 400;
    std::vector<std::size_t> eval_idx(256);
    for (std::size_t i = 0; i < eval_idx.size(); ++i) eval_idx[i] = i;
    ds::Tensor eval_images;
    std::vector<std::int32_t> eval_labels;
    ds::gather_batch(data.test, eval_idx, eval_images, eval_labels);
    while (iters < max_iters && !reached) {
      ++iters;
      sampler.next(images, labels);
      train_net->zero_grads();
      train_net->forward_backward(images, labels);
      ds::sgd_step(train_net->arena().full_params(),
                   train_net->arena().full_grads(), 0.08f);
      if (iters % 10 == 0) {
        const ds::LossResult r =
            train_net->evaluate_batch(eval_images, eval_labels);
        if (static_cast<double>(r.correct) / 256.0 >= target) {
          reached = true;
          reached_wall = wall.seconds();
        }
      }
    }
    if (!reached) reached_wall = wall.seconds();
    const double virt_throughput =
        static_cast<double>(batch) / hw.fwd_bwd_seconds(batch);
    std::printf("%7zu %15.0f %17.0f %12zu%s %14zu %16.2f\n", batch,
                throughput, virt_throughput, iters, reached ? " " : "*",
                iters * batch, reached_wall);
    const std::string prefix = "batch_" + std::to_string(batch) + ".";
    // Wall-clock throughput is machine-dependent — informational only.
    reporter.metric(prefix + "wall_samples_per_s", throughput,
                    ds::bench::Better::kNone);
    reporter.metric(prefix + "virt_samples_per_s", virt_throughput,
                    ds::bench::Better::kHigher);
  }
  std::printf("\n(*) target not reached within the iteration budget\n");
  std::printf(
      "Expected shape (7.2): device throughput rises with batch "
      "(launch-overhead\namortisation + larger GEMMs) and plateaus; "
      "samples-to-target rises past the\nsweet spot, so time-to-accuracy "
      "is U-shaped.\n");
  args.describe(reporter);
  return args.finish(reporter);
}
