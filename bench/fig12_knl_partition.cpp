// Figure 12 — "Partitioning a KNL chip into groups and making each group
// process one local weight can improve the performance."
//
// The §6.2 divide-and-conquer: split the chip into P groups, each with its
// own weight copy and data copy; tree-sum gradients each round. Real
// training (AlexNet-S on the Cifar stand-in) provides rounds-to-accuracy;
// the KnlChip memory model (MCDRAM residency + tag-directory locality)
// provides the per-round time at paper scale (AlexNet 249 MB weights, one
// Cifar copy 687 MB).
//
// Paper numbers to match in shape: 1 part 1605 s, 4 parts 1025 s, 8 parts
// 823 s, 16 parts 490 s (3.3×); 32 parts exceeds the 16 GB MCDRAM and
// regresses.
#include <cstdio>

#include "core/knl_algorithms.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header("Figure 12: KNL chip partitioning (\"P parts\")");

  const ds::KnlChip chip;
  std::printf("chip: %zu cores, %.0f GB MCDRAM @ %.0f GB/s, DDR @ %.0f GB/s\n",
              chip.config().cores, chip.config().mcdram_bytes / 1024 / 1024 / 1024,
              chip.config().mcdram_bandwidth / 1e9,
              chip.config().ddr_bandwidth / 1e9);
  std::printf("workload: AlexNet (249 MB weights) + one Cifar copy (687 MB) "
              "per partition\n\n");

  // Fixed TOTAL batch: the chip's resources are constant, so partitioning
  // splits the same 64-sample round across P groups (P groups × 64/P
  // samples). Every P then runs the identical optimisation trajectory —
  // the test suite asserts partitioned gradient-summing equals large-batch
  // SGD — and the time axis isolates the memory-system effect, which is
  // the paper's explanation of Figure 12.
  constexpr std::size_t kTotalBatch = 64;

  std::printf("%6s %10s %12s %10s %10s %12s %10s %8s\n", "parts", "foot(GB)",
              "bw(GB/s)", "own-rounds", "round(s)", "time-to-acc", "final",
              "speedup");

  // The optimisation trajectory is statistically identical for every P
  // (fixed effective batch), so time-to-accuracy is priced on a COMMON
  // round budget, measured once at P=1 with a robust criterion; each P's
  // own measured rounds-to-target is printed alongside to validate the
  // statistical equivalence.
  std::size_t common_rounds = 0;
  double base_time = 0.0;
  std::vector<ds::RunResult> runs;
  ds::bench::Reporter reporter("fig12_knl_partition");
  for (const std::size_t parts : {1UL, 2UL, 4UL, 8UL, 16UL, 32UL}) {
    ds::bench::CifarAlexnetSetup setup(1024, 512);
    setup.ctx.config.batch_size = std::max<std::size_t>(kTotalBatch / parts, 1);
    setup.ctx.config.eval_every = 2;
    setup.ctx.config.eval_samples = 512;
    setup.ctx.config.learning_rate = 0.02f;
    if (args.has_seed) setup.ctx.config.seed = args.seed;

    ds::KnlPartitionConfig pcfg;
    pcfg.parts = parts;
    pcfg.paper_model = ds::paper_alexnet();
    pcfg.target_accuracy = 2.0;  // run the full budget; robust
                                 // time-to-target is derived below
    pcfg.max_rounds = 90;
    pcfg.scale_lr_with_parts = false;  // effective batch is constant

    const ds::KnlPartitionResult r =
        run_knl_partition(setup.ctx, chip, pcfg);

    // Robust rounds-to-accuracy: first probe of two CONSECUTIVE probes at
    // or above the target (a single noisy crossing does not count).
    const double target = 0.9;
    std::size_t rounds_to = r.rounds;
    bool reached = false;
    for (std::size_t i = 0; i + 1 < r.run.trace.size(); ++i) {
      if (r.run.trace[i].accuracy >= target &&
          r.run.trace[i + 1].accuracy >= target) {
        rounds_to = r.run.trace[i].iteration;
        reached = true;
        break;
      }
    }
    if (parts == 1) common_rounds = rounds_to;
    const double time_to =
        static_cast<double>(common_rounds) * r.round_seconds;
    if (parts == 1) base_time = time_to;
    std::printf("%6zu %10.2f %12.0f %9zu%s %10.3f %12.1f %10.3f %7.2fx\n",
                parts, r.footprint_gb, r.bandwidth_gbs, rounds_to,
                reached ? " " : "*", r.round_seconds, time_to,
                r.run.final_accuracy, base_time / time_to);

    ds::RunResult row = r.run;
    row.method = "KNL " + std::to_string(parts) + " part(s)";
    runs.push_back(std::move(row));
    const std::string prefix = "knl.parts_" + std::to_string(parts) + ".";
    reporter.metric(prefix + "time_to_target", time_to,
                    ds::bench::Better::kLower, "s");
    reporter.metric(prefix + "round_seconds", r.round_seconds,
                    ds::bench::Better::kLower, "s");
  }
  std::printf("\n(*) own-run target crossing not observed within the round "
              "budget (noise; the\n    common-budget time column is "
              "unaffected)\n");
  std::printf("paper: P=1 1605s, P=4 1025s (1.6x), P=8 823s (2.0x), "
              "P=16 490s (3.3x); P=32 exceeds MCDRAM\n");

  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
