// Communication-substrate microbenchmarks (google-benchmark): real wall
// time of the in-memory collectives (what the synchronous algorithms spend
// host cycles on) and of the threaded fabric's tree schedules, plus the
// α-β ablation of tree-vs-linear and packed-vs-per-layer cost evaluation.
#include <benchmark/benchmark.h>

#include <thread>

#include "comm/collectives.hpp"
#include "comm/fabric.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

void fill(std::vector<float>& v, ds::Rng& rng) {
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
}

// -------------------------- In-memory data movement ---------------------------

void BM_ReduceSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t workers = 4;
  ds::Rng rng(1);
  std::vector<std::vector<float>> bufs(workers, std::vector<float>(n));
  for (auto& b : bufs) fill(b, rng);
  std::vector<float> out(n);
  std::vector<std::span<const float>> views;
  for (auto& b : bufs) views.emplace_back(b.data(), b.size());
  for (auto _ : state) {
    ds::reduce_sum(views, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * workers) *
                          sizeof(float));
}
BENCHMARK(BM_ReduceSum)->Arg(14970)->Arg(1 << 18);

void BM_Broadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Rng rng(1);
  std::vector<float> src(n);
  fill(src, rng);
  std::vector<std::vector<float>> dests(4, std::vector<float>(n));
  std::vector<std::span<float>> views;
  for (auto& d : dests) views.emplace_back(d.data(), d.size());
  for (auto _ : state) {
    ds::broadcast(src, views);
    benchmark::DoNotOptimize(dests[3].data());
  }
}
BENCHMARK(BM_Broadcast)->Arg(14970)->Arg(1 << 18);

void BM_AllreduceSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Rng rng(1);
  std::vector<std::vector<float>> bufs(4, std::vector<float>(n));
  for (auto& b : bufs) fill(b, rng);
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.emplace_back(b.data(), b.size());
  for (auto _ : state) {
    ds::allreduce_sum(views);
    benchmark::DoNotOptimize(bufs[0].data());
  }
}
BENCHMARK(BM_AllreduceSum)->Arg(14970);

// ------------------------------ Fabric schedules ------------------------------

void BM_FabricAllreduce(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 14970;  // LeNet-S model size
  for (auto _ : state) {
    ds::Fabric fabric(ranks, ds::fdr_infiniband());
    std::vector<std::vector<float>> data(ranks);
    ds::parallel_for_threads(ranks, [&](std::size_t r) {
      data[r].assign(n, static_cast<float>(r));
      fabric.tree_allreduce(r, 0, data[r]);
    });
    benchmark::DoNotOptimize(data[0].data());
  }
}
BENCHMARK(BM_FabricAllreduce)->Arg(2)->Arg(4)->Arg(8);

// ------------------------------ α-β cost ablation -----------------------------

void BM_CostTreeVsLinear(benchmark::State& state) {
  // Evaluates the closed-form schedule costs over a sweep of rank counts;
  // the interesting output is the counters, not the (trivial) wall time.
  const ds::LinkModel link = ds::fdr_infiniband();
  const double bytes = 1.7e6;  // paper-scale LeNet
  double tree = 0.0, linear = 0.0;
  for (auto _ : state) {
    tree = ds::collective_seconds(ds::CollectiveAlgo::kBinomialTree, 64,
                                  bytes, link);
    linear =
        ds::collective_seconds(ds::CollectiveAlgo::kLinear, 64, bytes, link);
    benchmark::DoNotOptimize(tree);
    benchmark::DoNotOptimize(linear);
  }
  state.counters["tree_us"] = tree * 1e6;
  state.counters["linear_us"] = linear * 1e6;
  state.counters["speedup"] = linear / tree;
}
BENCHMARK(BM_CostTreeVsLinear);

void BM_CostPackedVsPerLayer(benchmark::State& state) {
  const ds::LinkModel link = ds::fdr_infiniband();
  const std::vector<double> layers(59, 27.2e6 / 59.0);  // GoogLeNet tensors
  double packed = 0.0, per_layer = 0.0;
  for (auto _ : state) {
    packed = ds::model_collective_seconds(ds::CollectiveAlgo::kBinomialTree,
                                          64, layers,
                                          ds::MessageLayout::kPacked, link);
    per_layer = ds::model_collective_seconds(
        ds::CollectiveAlgo::kBinomialTree, 64, layers,
        ds::MessageLayout::kPerLayer, link);
    benchmark::DoNotOptimize(packed);
    benchmark::DoNotOptimize(per_layer);
  }
  state.counters["packed_us"] = packed * 1e6;
  state.counters["per_layer_us"] = per_layer * 1e6;
  state.counters["speedup"] = per_layer / packed;
}
BENCHMARK(BM_CostPackedVsPerLayer);

}  // namespace

#include "micro_bench_main.hpp"
DS_MICRO_BENCH_MAIN("micro_collectives")
