// Table 3 / Figure 11 — "Breakdown of time for EASGD variants".
//
// Six rows: Original EASGD* (no overlap), Original EASGD, Sync EASGD1/2/3,
// and Sync EASGD3 with the layer-bucketed backprop-overlapped exchange
// (DESIGN.md §10), all trained to the same target accuracy on the MNIST
// stand-in with LeNet on the simulated 4-GPU node at the paper's batch
// size (64). For each row: per-category share of virtual time, iterations
// and time to target, and the speedup chain the paper reports (EASGD1 ≈
// 3.7× over Original, EASGD2 ≈ 1.3× over EASGD1, EASGD3 ≈ 1.1× over
// EASGD2, ~5.3× end to end, with the communication share dropping from
// ~87% to ~14%). The bucketed row's trace-level overlap metrics gate the
// pipeline: >80% of its communication must be hidden under compute.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/sync_algorithms.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/trace.hpp"
#include "tensor/conv_algo.hpp"
#include "bench_util.hpp"

namespace {

/// Measured (wall-clock) forward+backward step time of `factory`'s network
/// under a pinned process-wide conv algorithm, in milliseconds. Two warm-up
/// steps, then the BEST of three `steps`-step windows — the minimum window
/// rejects transient runner load, so the im2col/auto ratio built from two
/// of these is stable enough for bench_compare to gate (see ci.yml's
/// wall.* tolerance note).
double measured_step_ms(const std::function<std::unique_ptr<ds::Network>()>&
                            factory,
                        ds::ConvAlgo algo, std::size_t steps) {
  ds::set_process_conv_algo(algo);
  auto net = factory();
  ds::Rng rng(11);
  ds::Tensor x({8, 3, 32, 32});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<std::int32_t> labels(8);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 10);
  }
  for (int w = 0; w < 2; ++w) {  // warm scratch + caches
    net->zero_grads();
    net->forward_backward(x, labels);
  }
  double best_seconds = 0.0;
  for (int window = 0; window < 3; ++window) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < steps; ++s) {
      net->zero_grads();
      net->forward_backward(x, labels);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (window == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  ds::set_process_conv_algo(ds::ConvAlgo::kAuto);
  return 1e3 * best_seconds / static_cast<double>(steps);
}

struct Row {
  ds::RunResult result;
  double time_to_target = 0.0;
  std::size_t iters_to_target = 0;
};

Row make_row(ds::RunResult result, double target) {
  Row row;
  row.time_to_target = result.total_seconds;
  row.iters_to_target = result.iterations;
  for (const ds::TracePoint& p : result.trace) {
    if (p.accuracy >= target) {
      row.time_to_target = p.vtime;
      row.iters_to_target = p.iteration;
      break;
    }
  }
  row.result = std::move(result);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header("Table 3: breakdown of time for EASGD variants");

  ds::bench::MnistLenetSetup setup;
  setup.ctx.config.batch_size = 64;  // the paper's Table 3 batch size
  setup.ctx.config.iterations = 220;
  setup.ctx.config.eval_every = 10;
  args.apply(setup.ctx.config);
  const double target = 0.96;

  std::vector<Row> rows;
  {
    ds::AlgoContext ctx = setup.ctx;
    // One worker per round-robin iteration: same sample budget needs 4×
    // iterations (the paper runs 5000 vs 1000).
    ctx.config.iterations *= ctx.config.workers;
    ctx.config.eval_every *= ctx.config.workers;
    rows.push_back(make_row(
        run_original_easgd(ctx, setup.hw, ds::OriginalVariant::kNonOverlapped),
        target));
    rows.push_back(make_row(
        run_original_easgd(ctx, setup.hw, ds::OriginalVariant::kOverlapped),
        target));
  }
  rows.push_back(make_row(
      run_sync_easgd(setup.ctx, setup.hw, ds::SyncEasgdVariant::kEasgd1),
      target));
  rows.push_back(make_row(
      run_sync_easgd(setup.ctx, setup.hw, ds::SyncEasgdVariant::kEasgd2),
      target));
  rows.push_back(make_row(
      run_sync_easgd(setup.ctx, setup.hw, ds::SyncEasgdVariant::kEasgd3),
      target));

  // EASGD3 + the layer-bucketed backprop-overlapped exchange (DESIGN.md
  // §10): identical math (bitwise — the test suite pins it), reshaped
  // timeline. Traced so the comm/compute split is measurable.
  namespace analysis = ds::obs::analysis;
  ds::AlgoContext bucketed_ctx = setup.ctx;
  // 4 KiB over the scaled lenet_s arena (~58 KB): {fc2}, {fc1 oversized},
  // {conv2 oversized}, {conv1} — only the last (~1% of bytes) exposed past
  // backward.
  bucketed_ctx.config.bucketing.bucket_bytes = 4096;
  ds::obs::set_tracing_enabled(false);
  ds::obs::reset();
  ds::obs::set_tracing_enabled(true);
  rows.push_back(make_row(
      run_sync_easgd(bucketed_ctx, setup.hw, ds::SyncEasgdVariant::kEasgd3),
      target));
  ds::obs::set_tracing_enabled(false);
  const analysis::TraceData bucketed_trace =
      analysis::ingest_snapshot(ds::obs::snapshot());
  ds::obs::reset();
  const analysis::OverlapSplit overlap =
      analysis::comm_compute_split(bucketed_trace);

  std::printf("target accuracy %.3f, batch 64, 4 simulated GPUs\n\n", target);
  std::printf("%-18s %5s %6s %8s | %8s %8s %8s %8s %7s %7s | %5s\n", "Method",
              "acc", "iters", "time(s)", "gpu-gpu", "cpu-gpu", "cpu-gpu",
              "for/bwd", "gpu-up", "cpu-up", "comm");
  std::printf("%-18s %5s %6s %8s | %8s %8s %8s %8s %7s %7s | %5s\n", "", "",
              "", "", "para", "data", "para", "", "", "", "ratio");
  for (const Row& row : rows) {
    const ds::CostLedger& lg = row.result.ledger;
    const double total = lg.total_seconds();
    auto pct = [&](ds::Phase p) { return 100.0 * lg.seconds(p) / total; };
    std::printf(
        "%-18s %5.3f %6zu %8.2f | %7.1f%% %7.1f%% %7.1f%% %7.1f%% %6.1f%% "
        "%6.1f%% | %4.0f%%\n",
        row.result.method.c_str(),
        row.result.trace.empty() ? 0.0 : row.result.final_accuracy,
        row.iters_to_target, row.time_to_target,
        pct(ds::Phase::kGpuGpuParamComm), pct(ds::Phase::kCpuGpuDataComm),
        pct(ds::Phase::kCpuGpuParamComm), pct(ds::Phase::kForwardBackward),
        pct(ds::Phase::kGpuUpdate), pct(ds::Phase::kCpuUpdate),
        100.0 * lg.comm_ratio());
  }

  std::vector<ds::RunResult> runs;
  runs.reserve(rows.size());
  for (const Row& row : rows) runs.push_back(row.result);
  ds::bench::print_wire_table(runs);
  std::printf("(packing shrinks messages, not bytes; EASGD1's host hop and "
              "EASGD2/3's switch\nmove the same payload)\n");

  std::printf("\nSpeedup chain (time to %.3f accuracy):\n", target);
  const double t_orig = rows[1].time_to_target;
  const double t1 = rows[2].time_to_target;
  const double t2 = rows[3].time_to_target;
  const double t3 = rows[4].time_to_target;
  std::printf("  Sync EASGD1 over Original EASGD: %4.2fx (paper: 3.7x)\n",
              t_orig / t1);
  std::printf("  Sync EASGD2 over Sync EASGD1:    %4.2fx (paper: 1.3x)\n",
              t1 / t2);
  std::printf("  Sync EASGD3 over Sync EASGD2:    %4.2fx (paper: 1.1x)\n",
              t2 / t3);
  std::printf("  Sync EASGD3 over Original EASGD: %4.2fx (paper: 5.3x)\n",
              t_orig / t3);
  std::printf(
      "  comm ratio: Original %.0f%% -> Sync EASGD3 %.0f%% "
      "(paper: 87%% -> 14%%)\n",
      100.0 * rows[1].result.ledger.comm_ratio(),
      100.0 * rows[4].result.ledger.comm_ratio());
  std::printf(
      "  bucketed EASGD3 overlap: %.1f%% of comm hidden under compute "
      "(%.2f ms hidden of %.2f ms comm); time to target %.2fs vs %.2fs "
      "unbucketed\n",
      100.0 * overlap.overlap_fraction(), 1e3 * overlap.overlap_seconds,
      1e3 * overlap.comm_seconds, rows[5].time_to_target,
      rows[4].time_to_target);

  // --- measured conv-dispatch step times (wall clock, not simulated) ----
  // The virtual-time rows above cost convolutions by flop count, so the
  // conv-algorithm dispatch cannot show up there; this section times real
  // forward+backward steps of the two 3×3-heavy model families with the
  // dispatch pinned to im2col vs left on auto (direct/Winograd).
  const std::size_t steps = 12;
  const auto alexnet_factory = [] {
    ds::Rng rng(7);
    return ds::make_alexnet_s(rng);
  };
  const auto googlenet_factory = [] {
    ds::Rng rng(7);
    return ds::make_googlenet_s(rng);
  };
  const double alex_im2col =
      measured_step_ms(alexnet_factory, ds::ConvAlgo::kIm2col, steps);
  const double alex_auto =
      measured_step_ms(alexnet_factory, ds::ConvAlgo::kAuto, steps);
  const double goog_im2col =
      measured_step_ms(googlenet_factory, ds::ConvAlgo::kIm2col, steps);
  const double goog_auto =
      measured_step_ms(googlenet_factory, ds::ConvAlgo::kAuto, steps);
  std::printf(
      "\nMeasured step time (wall clock, batch 8, %zu steps):\n"
      "  %-12s %10s %10s %9s\n",
      steps, "model", "im2col ms", "auto ms", "speedup");
  std::printf("  %-12s %10.3f %10.3f %8.2fx\n", "alexnet_s", alex_im2col,
              alex_auto, alex_im2col / alex_auto);
  std::printf("  %-12s %10.3f %10.3f %8.2fx\n", "googlenet_s", goog_im2col,
              goog_auto, goog_im2col / goog_auto);

  ds::bench::Reporter reporter("table3_breakdown");
  reporter.set_seed(setup.ctx.config.seed);
  reporter.set_setup("batch_size",
                     static_cast<double>(setup.ctx.config.batch_size));
  reporter.set_setup("target_accuracy", target);
  args.describe(reporter);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string label = reporter.add_run(rows[i].result);
    reporter.metric("run." + label + ".time_to_target",
                    rows[i].time_to_target, ds::bench::Better::kLower, "s");
  }
  reporter.metric("speedup.easgd3_over_original", t_orig / t3,
                  ds::bench::Better::kHigher);
  reporter.metric("overlap.bucketed_fraction", overlap.overlap_fraction(),
                  ds::bench::Better::kHigher);
  reporter.metric("overlap.hidden_comm_ms", 1e3 * overlap.overlap_seconds,
                  ds::bench::Better::kHigher, "ms");
  // Raw step times are machine-dependent (informational); the im2col/auto
  // ratios are in-process and load-stable, so the gate holds them.
  reporter.metric("wall.alexnet_step_ms_im2col", alex_im2col,
                  ds::bench::Better::kNone, "ms");
  reporter.metric("wall.alexnet_step_ms_auto", alex_auto,
                  ds::bench::Better::kNone, "ms");
  reporter.metric("wall.alexnet_conv_speedup", alex_im2col / alex_auto,
                  ds::bench::Better::kHigher);
  reporter.metric("wall.googlenet_step_ms_im2col", goog_im2col,
                  ds::bench::Better::kNone, "ms");
  reporter.metric("wall.googlenet_step_ms_auto", goog_auto,
                  ds::bench::Better::kNone, "ms");
  reporter.metric("wall.googlenet_conv_speedup", goog_im2col / goog_auto,
                  ds::bench::Better::kHigher);
  return args.finish(reporter);
}
