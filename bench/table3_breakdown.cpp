// Table 3 / Figure 11 — "Breakdown of time for EASGD variants".
//
// Six rows: Original EASGD* (no overlap), Original EASGD, Sync EASGD1/2/3,
// and Sync EASGD3 with the layer-bucketed backprop-overlapped exchange
// (DESIGN.md §10), all trained to the same target accuracy on the MNIST
// stand-in with LeNet on the simulated 4-GPU node at the paper's batch
// size (64). For each row: per-category share of virtual time, iterations
// and time to target, and the speedup chain the paper reports (EASGD1 ≈
// 3.7× over Original, EASGD2 ≈ 1.3× over EASGD1, EASGD3 ≈ 1.1× over
// EASGD2, ~5.3× end to end, with the communication share dropping from
// ~87% to ~14%). The bucketed row's trace-level overlap metrics gate the
// pipeline: >80% of its communication must be hidden under compute.
#include <cstdio>
#include <vector>

#include "core/sync_algorithms.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/trace.hpp"
#include "bench_util.hpp"

namespace {

struct Row {
  ds::RunResult result;
  double time_to_target = 0.0;
  std::size_t iters_to_target = 0;
};

Row make_row(ds::RunResult result, double target) {
  Row row;
  row.time_to_target = result.total_seconds;
  row.iters_to_target = result.iterations;
  for (const ds::TracePoint& p : result.trace) {
    if (p.accuracy >= target) {
      row.time_to_target = p.vtime;
      row.iters_to_target = p.iteration;
      break;
    }
  }
  row.result = std::move(result);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header("Table 3: breakdown of time for EASGD variants");

  ds::bench::MnistLenetSetup setup;
  setup.ctx.config.batch_size = 64;  // the paper's Table 3 batch size
  setup.ctx.config.iterations = 220;
  setup.ctx.config.eval_every = 10;
  args.apply(setup.ctx.config);
  const double target = 0.96;

  std::vector<Row> rows;
  {
    ds::AlgoContext ctx = setup.ctx;
    // One worker per round-robin iteration: same sample budget needs 4×
    // iterations (the paper runs 5000 vs 1000).
    ctx.config.iterations *= ctx.config.workers;
    ctx.config.eval_every *= ctx.config.workers;
    rows.push_back(make_row(
        run_original_easgd(ctx, setup.hw, ds::OriginalVariant::kNonOverlapped),
        target));
    rows.push_back(make_row(
        run_original_easgd(ctx, setup.hw, ds::OriginalVariant::kOverlapped),
        target));
  }
  rows.push_back(make_row(
      run_sync_easgd(setup.ctx, setup.hw, ds::SyncEasgdVariant::kEasgd1),
      target));
  rows.push_back(make_row(
      run_sync_easgd(setup.ctx, setup.hw, ds::SyncEasgdVariant::kEasgd2),
      target));
  rows.push_back(make_row(
      run_sync_easgd(setup.ctx, setup.hw, ds::SyncEasgdVariant::kEasgd3),
      target));

  // EASGD3 + the layer-bucketed backprop-overlapped exchange (DESIGN.md
  // §10): identical math (bitwise — the test suite pins it), reshaped
  // timeline. Traced so the comm/compute split is measurable.
  namespace analysis = ds::obs::analysis;
  ds::AlgoContext bucketed_ctx = setup.ctx;
  // 4 KiB over the scaled lenet_s arena (~58 KB): {fc2}, {fc1 oversized},
  // {conv2 oversized}, {conv1} — only the last (~1% of bytes) exposed past
  // backward.
  bucketed_ctx.config.bucketing.bucket_bytes = 4096;
  ds::obs::set_tracing_enabled(false);
  ds::obs::reset();
  ds::obs::set_tracing_enabled(true);
  rows.push_back(make_row(
      run_sync_easgd(bucketed_ctx, setup.hw, ds::SyncEasgdVariant::kEasgd3),
      target));
  ds::obs::set_tracing_enabled(false);
  const analysis::TraceData bucketed_trace =
      analysis::ingest_snapshot(ds::obs::snapshot());
  ds::obs::reset();
  const analysis::OverlapSplit overlap =
      analysis::comm_compute_split(bucketed_trace);

  std::printf("target accuracy %.3f, batch 64, 4 simulated GPUs\n\n", target);
  std::printf("%-18s %5s %6s %8s | %8s %8s %8s %8s %7s %7s | %5s\n", "Method",
              "acc", "iters", "time(s)", "gpu-gpu", "cpu-gpu", "cpu-gpu",
              "for/bwd", "gpu-up", "cpu-up", "comm");
  std::printf("%-18s %5s %6s %8s | %8s %8s %8s %8s %7s %7s | %5s\n", "", "",
              "", "", "para", "data", "para", "", "", "", "ratio");
  for (const Row& row : rows) {
    const ds::CostLedger& lg = row.result.ledger;
    const double total = lg.total_seconds();
    auto pct = [&](ds::Phase p) { return 100.0 * lg.seconds(p) / total; };
    std::printf(
        "%-18s %5.3f %6zu %8.2f | %7.1f%% %7.1f%% %7.1f%% %7.1f%% %6.1f%% "
        "%6.1f%% | %4.0f%%\n",
        row.result.method.c_str(),
        row.result.trace.empty() ? 0.0 : row.result.final_accuracy,
        row.iters_to_target, row.time_to_target,
        pct(ds::Phase::kGpuGpuParamComm), pct(ds::Phase::kCpuGpuDataComm),
        pct(ds::Phase::kCpuGpuParamComm), pct(ds::Phase::kForwardBackward),
        pct(ds::Phase::kGpuUpdate), pct(ds::Phase::kCpuUpdate),
        100.0 * lg.comm_ratio());
  }

  std::vector<ds::RunResult> runs;
  runs.reserve(rows.size());
  for (const Row& row : rows) runs.push_back(row.result);
  ds::bench::print_wire_table(runs);
  std::printf("(packing shrinks messages, not bytes; EASGD1's host hop and "
              "EASGD2/3's switch\nmove the same payload)\n");

  std::printf("\nSpeedup chain (time to %.3f accuracy):\n", target);
  const double t_orig = rows[1].time_to_target;
  const double t1 = rows[2].time_to_target;
  const double t2 = rows[3].time_to_target;
  const double t3 = rows[4].time_to_target;
  std::printf("  Sync EASGD1 over Original EASGD: %4.2fx (paper: 3.7x)\n",
              t_orig / t1);
  std::printf("  Sync EASGD2 over Sync EASGD1:    %4.2fx (paper: 1.3x)\n",
              t1 / t2);
  std::printf("  Sync EASGD3 over Sync EASGD2:    %4.2fx (paper: 1.1x)\n",
              t2 / t3);
  std::printf("  Sync EASGD3 over Original EASGD: %4.2fx (paper: 5.3x)\n",
              t_orig / t3);
  std::printf(
      "  comm ratio: Original %.0f%% -> Sync EASGD3 %.0f%% "
      "(paper: 87%% -> 14%%)\n",
      100.0 * rows[1].result.ledger.comm_ratio(),
      100.0 * rows[4].result.ledger.comm_ratio());
  std::printf(
      "  bucketed EASGD3 overlap: %.1f%% of comm hidden under compute "
      "(%.2f ms hidden of %.2f ms comm); time to target %.2fs vs %.2fs "
      "unbucketed\n",
      100.0 * overlap.overlap_fraction(), 1e3 * overlap.overlap_seconds,
      1e3 * overlap.comm_seconds, rows[5].time_to_target,
      rows[4].time_to_target);

  ds::bench::Reporter reporter("table3_breakdown");
  reporter.set_seed(setup.ctx.config.seed);
  reporter.set_setup("batch_size",
                     static_cast<double>(setup.ctx.config.batch_size));
  reporter.set_setup("target_accuracy", target);
  args.describe(reporter);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string label = reporter.add_run(rows[i].result);
    reporter.metric("run." + label + ".time_to_target",
                    rows[i].time_to_target, ds::bench::Better::kLower, "s");
  }
  reporter.metric("speedup.easgd3_over_original", t_orig / t3,
                  ds::bench::Better::kHigher);
  reporter.metric("overlap.bucketed_fraction", overlap.overlap_fraction(),
                  ds::bench::Better::kHigher);
  reporter.metric("overlap.hidden_comm_ms", 1e3 * overlap.overlap_seconds,
                  ds::bench::Better::kHigher, "ms");
  return args.finish(reporter);
}
