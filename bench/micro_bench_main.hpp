// Custom main() for the google-benchmark micro benches, replacing
// benchmark::benchmark_main so they speak the same CLI contract as the
// figure/table binaries: --seed N (accepted for uniformity; the micro
// benches use fixed internal seeds), --iters N (forwarded as
// --benchmark_min_time reps), --json PATH (write a deepscale.bench.v1
// document next to the normal console output). Every other flag is handed
// to google-benchmark untouched (--benchmark_filter etc.).
//
// Include this ONCE, at the bottom of a micro_*.cpp.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/analysis/bench_report.hpp"

namespace ds::bench {

/// ConsoleReporter that additionally records every per-iteration run as
/// metrics: "micro.<bench>.real_time_ns" (informational — wall time is
/// machine-dependent) and one metric per user counter. Rate counters that
/// carry "GFLOP" in their name are marked higher-is-better, which is what
/// the CI gate (generous tolerance) keys on.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(Reporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string base = "micro." + slug(run.benchmark_name());
      out_.metric(base + ".real_time_ns", run.GetAdjustedRealTime(),
                  Better::kNone, "ns");
      for (const auto& [cname, counter] : run.counters) {
        const Better better = cname.find("GFLOP") != std::string::npos ||
                                      cname.find("speedup") !=
                                          std::string::npos
                                  ? Better::kHigher
                                  : Better::kNone;
        out_.metric(base + "." + slug(cname),
                    static_cast<double>(counter.value), better);
      }
    }
  }

 private:
  Reporter& out_;
};

inline int micro_bench_main(const char* bench_name, int argc, char** argv) {
  std::string json_path;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--seed") == 0 ||
         std::strcmp(argv[i], "--iters") == 0) &&
        i + 1 < argc) {
      ++i;  // accepted for CLI uniformity; unused here
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      fwd.push_back(argv[i]);
    }
  }
  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 2;

  // Debug-build numbers are meaningless as baselines (assertions on, -O0):
  // warn loudly on every run, and refuse to produce a JSON document so a CI
  // baseline regeneration from the wrong build type fails instead of
  // silently committing garbage. NDEBUG tracks THIS translation unit's
  // optimisation config, unlike google-benchmark's library_build_type,
  // which only describes the benchmark library itself.
#ifndef NDEBUG
  std::fprintf(stderr,
               "*** %s: DEBUG BUILD — timings are not comparable to release "
               "baselines ***\n",
               bench_name);
  if (!json_path.empty()) {
    std::fprintf(stderr,
                 "*** refusing to write %s from a debug build; rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release ***\n",
                 json_path.c_str());
    return 3;
  }
#endif

  Reporter reporter(bench_name);
  CapturingReporter display(reporter);
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    reporter.write_file(json_path);
    std::printf("bench json: %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace ds::bench

#define DS_MICRO_BENCH_MAIN(name)                         \
  int main(int argc, char** argv) {                       \
    return ds::bench::micro_bench_main(name, argc, argv); \
  }
