// Figure 8 — all eight methods overlaid: log10 error-rate vs virtual time
// on identical hardware (4 simulated GPUs) and hyperparameters.
//
// Paper claims to check:
//   * every "ours" method beats its existing counterpart,
//   * Sync EASGD and Hogwild EASGD are essentially tied for fastest.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/methods.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::MnistLenetSetup setup;
  args.apply(setup.ctx.config);
  ds::bench::print_header(
      "Figure 8: all methods, log10 error-rate vs virtual time");

  std::vector<ds::RunResult> runs;
  for (const ds::Method m : ds::all_methods()) {
    ds::AlgoContext ctx = setup.ctx;
    ds::bench::scale_budget_to_samples(ctx, m);
    runs.push_back(run_method(m, ctx, setup.hw));
    std::printf("%-16s [%s]  final acc %.3f at %.2f virtual s\n",
                runs.back().method.c_str(),
                ds::is_new_method(m) ? "ours    " : "existing",
                runs.back().final_accuracy, runs.back().total_seconds);
  }

  std::printf("\nPer-method traces:\n");
  for (const ds::RunResult& r : runs) {
    std::printf("\n");
    ds::bench::print_trace(r);
  }

  // Ranking at a common target accuracy.
  double target = 1.0;
  for (const ds::RunResult& r : runs) {
    target = std::min(target, r.best_accuracy());
  }
  target *= 0.97;
  std::printf("\nTime to %.3f accuracy (lower is better):\n", target);
  std::vector<std::pair<double, const ds::RunResult*>> ranking;
  for (const ds::RunResult& r : runs) {
    const auto t = r.time_to_accuracy(target);
    if (t) ranking.emplace_back(*t, &r);
  }
  std::sort(ranking.begin(), ranking.end());
  for (const auto& [t, r] : ranking) {
    std::printf("  %-16s %8.2f s\n", r->method.c_str(), t);
  }

  std::printf("\n");
  ds::bench::print_csv(runs);

  ds::bench::Reporter reporter("fig8_overall");
  reporter.set_seed(setup.ctx.config.seed);
  reporter.set_setup("workers", static_cast<double>(setup.ctx.config.workers));
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
