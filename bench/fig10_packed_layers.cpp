// Figure 10 — "The benefit of packed layer comes from reduced communication
// latency and continuous memory access."
//
// Sync SGD training AlexNet (scaled) with the gradient allreduce either as
// one packed message per collective hop (§5.2), one message per learnable
// tensor (mainstream-framework baseline), or the layer-bucketed
// backprop-overlapped pipeline (DESIGN.md §10) that interpolates between
// them: retire-ordered buckets ship in flight under the remaining backward
// pass. Identical math in all three (the test suite asserts the accuracy
// traces match bit-for-bit); the per-layer schedule pays the extra latency
// exposed, the bucketed schedule pays it hidden.
//
// The overlap metrics gate the pipeline's reason to exist: the trace-level
// comm/compute split on the bucketed run must show >80% of communication
// hidden under compute (ISSUE acceptance, mirrored by
// tests/overlap_pipeline_test.cpp).
//
// The paper's plot shows two runs with different RNG seeds at slightly
// different heights; we reproduce that by also printing a second-seed run.
#include <cstdio>

#include "core/sync_algorithms.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/trace.hpp"
#include "bench_util.hpp"

namespace {

// 48 KiB over the scaled alexnet_s arena (~325 KB) yields 4 buckets:
// {fc2}, {fc1 oversized}, {conv3}, {conv2+conv1} — only the last (~6% of
// bytes) is exposed past the end of backward.
constexpr std::size_t kBucketBytes = std::size_t{48} << 10;

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header(
      "Figure 10: packed single-message vs per-layer vs bucketed-overlap "
      "communication (Sync SGD, AlexNet)");

  namespace analysis = ds::obs::analysis;
  ds::bench::Reporter reporter("fig10_packed_layers");

  std::vector<ds::RunResult> runs;
  const std::uint64_t seeds[] = {args.has_seed ? args.seed : 1ULL, 2ULL};
  bool overlap_reported = false;
  for (const std::uint64_t seed : seeds) {
    ds::bench::CifarAlexnetSetup setup;
    setup.ctx.config.seed = seed;
    if (args.has_iters) setup.ctx.config.iterations = args.iters;
    std::printf("--- RNG seed %llu ---\n",
                static_cast<unsigned long long>(seed));

    setup.ctx.config.layout = ds::MessageLayout::kPacked;
    const ds::RunResult packed = run_sync_sgd(setup.ctx, setup.hw);
    ds::bench::print_trace(packed);
    std::printf("\n");

    setup.ctx.config.layout = ds::MessageLayout::kPerLayer;
    const ds::RunResult layered = run_sync_sgd(setup.ctx, setup.hw);
    ds::bench::print_trace(layered);
    std::printf("\n");

    // Bucketed backprop-overlapped pipeline, traced so the comm/compute
    // split can be measured off the virtual timeline.
    setup.ctx.config.layout = ds::MessageLayout::kPacked;
    setup.ctx.config.bucketing.bucket_bytes = kBucketBytes;
    ds::obs::set_tracing_enabled(false);
    ds::obs::reset();
    ds::obs::set_tracing_enabled(true);
    const ds::RunResult bucketed = run_sync_sgd(setup.ctx, setup.hw);
    ds::obs::set_tracing_enabled(false);
    const analysis::TraceData trace =
        analysis::ingest_snapshot(ds::obs::snapshot());
    ds::obs::reset();
    ds::bench::print_trace(bucketed);

    const analysis::OverlapSplit split = analysis::comm_compute_split(trace);
    std::printf(
        "\n-> per-iteration comm: packed %.3f ms vs per-layer %.3f ms "
        "(%.2fx); same iterations, %.2fx total-time gap\n",
        1e3 * packed.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            static_cast<double>(packed.iterations),
        1e3 * layered.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            static_cast<double>(layered.iterations),
        layered.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            packed.ledger.seconds(ds::Phase::kGpuGpuParamComm),
        layered.total_seconds / packed.total_seconds);
    std::printf(
        "-> bucketed overlap: %.1f%% of comm hidden under compute "
        "(%.1f ms hidden, %.1f ms comm total); bucketed run %.2fx the "
        "packed total time\n\n",
        100.0 * split.overlap_fraction(), 1e3 * split.overlap_seconds,
        1e3 * split.comm_seconds, bucketed.total_seconds / packed.total_seconds);

    if (!overlap_reported) {
      // Overlap metrics from the first (default) seed only: the modeled run
      // is deterministic, so these are stable gate inputs.
      reporter.metric("overlap.bucketed_fraction", split.overlap_fraction(),
                      ds::bench::Better::kHigher);
      reporter.metric("overlap.hidden_comm_ms", 1e3 * split.overlap_seconds,
                      ds::bench::Better::kHigher, "ms");
      reporter.metric("overlap.comm_ms", 1e3 * split.comm_seconds,
                      ds::bench::Better::kNone, "ms");
      overlap_reported = true;
    }

    ds::RunResult packed_row = packed;
    packed_row.method += " (packed, seed " + std::to_string(seed) + ")";
    ds::RunResult layered_row = layered;
    layered_row.method += " (per-layer, seed " + std::to_string(seed) + ")";
    ds::RunResult bucketed_row = bucketed;
    bucketed_row.method += " (seed " + std::to_string(seed) + ")";
    runs.push_back(std::move(packed_row));
    runs.push_back(std::move(layered_row));
    runs.push_back(std::move(bucketed_row));
  }

  reporter.set_setup("bucket_bytes", static_cast<double>(kBucketBytes));
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
