// Figure 10 — "The benefit of packed layer comes from reduced communication
// latency and continuous memory access."
//
// Sync SGD training AlexNet (scaled) with the gradient allreduce either as
// one packed message per collective hop (§5.2) or one message per learnable
// tensor (mainstream-framework baseline). Identical math (the test suite
// asserts the accuracy traces match bit-for-bit); the per-layer schedule
// pays the extra latency, so the same accuracy arrives later in time.
// The paper's plot shows two runs with different RNG seeds at slightly
// different heights; we reproduce that by also printing a second-seed run.
#include <cstdio>

#include "core/sync_algorithms.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header(
      "Figure 10: packed single-message vs per-layer communication "
      "(Sync SGD, AlexNet)");

  std::vector<ds::RunResult> runs;
  const std::uint64_t seeds[] = {args.has_seed ? args.seed : 1ULL, 2ULL};
  for (const std::uint64_t seed : seeds) {
    ds::bench::CifarAlexnetSetup setup;
    setup.ctx.config.seed = seed;
    if (args.has_iters) setup.ctx.config.iterations = args.iters;
    std::printf("--- RNG seed %llu ---\n",
                static_cast<unsigned long long>(seed));

    setup.ctx.config.layout = ds::MessageLayout::kPacked;
    const ds::RunResult packed = run_sync_sgd(setup.ctx, setup.hw);
    ds::bench::print_trace(packed);
    std::printf("\n");

    setup.ctx.config.layout = ds::MessageLayout::kPerLayer;
    const ds::RunResult layered = run_sync_sgd(setup.ctx, setup.hw);
    ds::bench::print_trace(layered);

    std::printf(
        "\n-> per-iteration comm: packed %.3f ms vs per-layer %.3f ms "
        "(%.2fx); same iterations, %.2fx total-time gap\n\n",
        1e3 * packed.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            static_cast<double>(packed.iterations),
        1e3 * layered.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            static_cast<double>(layered.iterations),
        layered.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            packed.ledger.seconds(ds::Phase::kGpuGpuParamComm),
        layered.total_seconds / packed.total_seconds);

    ds::RunResult packed_row = packed;
    packed_row.method += " (packed, seed " + std::to_string(seed) + ")";
    ds::RunResult layered_row = layered;
    layered_row.method += " (per-layer, seed " + std::to_string(seed) + ")";
    runs.push_back(std::move(packed_row));
    runs.push_back(std::move(layered_row));
  }

  ds::bench::Reporter reporter("fig10_packed_layers");
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
