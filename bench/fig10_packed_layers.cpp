// Figure 10 — "The benefit of packed layer comes from reduced communication
// latency and continuous memory access."
//
// Sync SGD training AlexNet (scaled) with the gradient allreduce either as
// one packed message per collective hop (§5.2) or one message per learnable
// tensor (mainstream-framework baseline). Identical math (the test suite
// asserts the accuracy traces match bit-for-bit); the per-layer schedule
// pays the extra latency, so the same accuracy arrives later in time.
// The paper's plot shows two runs with different RNG seeds at slightly
// different heights; we reproduce that by also printing a second-seed run.
#include <cstdio>

#include "core/sync_algorithms.hpp"
#include "bench_util.hpp"

int main() {
  ds::bench::print_header(
      "Figure 10: packed single-message vs per-layer communication "
      "(Sync SGD, AlexNet)");

  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    ds::bench::CifarAlexnetSetup setup;
    setup.ctx.config.seed = seed;
    std::printf("--- RNG seed %llu ---\n",
                static_cast<unsigned long long>(seed));

    setup.ctx.config.layout = ds::MessageLayout::kPacked;
    const ds::RunResult packed = run_sync_sgd(setup.ctx, setup.hw);
    ds::bench::print_trace(packed);
    std::printf("\n");

    setup.ctx.config.layout = ds::MessageLayout::kPerLayer;
    const ds::RunResult layered = run_sync_sgd(setup.ctx, setup.hw);
    ds::bench::print_trace(layered);

    std::printf(
        "\n-> per-iteration comm: packed %.3f ms vs per-layer %.3f ms "
        "(%.2fx); same iterations, %.2fx total-time gap\n\n",
        1e3 * packed.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            static_cast<double>(packed.iterations),
        1e3 * layered.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            static_cast<double>(layered.iterations),
        layered.ledger.seconds(ds::Phase::kGpuGpuParamComm) /
            packed.ledger.seconds(ds::Phase::kGpuGpuParamComm),
        layered.total_seconds / packed.total_seconds);
  }
  return 0;
}
