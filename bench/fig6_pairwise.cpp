// Figure 6 — the four pairwise method comparisons, each our method vs its
// existing counterpart on identical hardware and hyperparameters (§2.4):
//
//   6.1  Async EASGD   vs  Async SGD
//   6.2  Async MEASGD  vs  Async MSGD
//   6.3  Hogwild EASGD vs  Hogwild SGD
//   6.4  Sync EASGD    vs  Original EASGD
//
// Output: accuracy-vs-virtual-time traces. The paper's claim to check: the
// EASGD variant reaches any given accuracy earlier than its counterpart.
#include <cstdio>

#include "core/methods.hpp"
#include "bench_util.hpp"

namespace {

void compare(const char* title, const ds::RunResult& ours,
             const ds::RunResult& existing) {
  ds::bench::print_header(title);
  ds::bench::print_trace(ours);
  std::printf("\n");
  ds::bench::print_trace(existing);
  // Paper-style summary: time to the best accuracy both methods reach.
  const double target =
      0.95 * std::min(ours.best_accuracy(), existing.best_accuracy());
  const auto t_ours = ours.time_to_accuracy(target);
  const auto t_existing = existing.time_to_accuracy(target);
  if (t_ours && t_existing) {
    std::printf("\n-> time to %.3f accuracy: %s %.2fs vs %s %.2fs (%.2fx)\n",
                target, ours.method.c_str(), *t_ours,
                existing.method.c_str(), *t_existing, *t_existing / *t_ours);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using ds::Method;
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::MnistLenetSetup setup;
  args.apply(setup.ctx.config);

  std::vector<ds::RunResult> runs;
  auto run = [&](Method m) -> const ds::RunResult& {
    ds::AlgoContext ctx = setup.ctx;
    ds::bench::scale_budget_to_samples(ctx, m);
    runs.push_back(run_method(m, ctx, setup.hw));
    return runs.back();
  };
  // Run pairs sequentially (not inside the compare() call) so the order of
  // `runs` — and thus the BENCH metric labels — is deterministic.
  auto duel = [&](const char* title, Method ours, Method existing) {
    const std::size_t a = runs.size();
    run(ours);
    run(existing);
    compare(title, runs[a], runs[a + 1]);
  };

  duel("Figure 6.1: Async EASGD vs Async SGD", Method::kAsyncEasgd,
       Method::kAsyncSgd);
  duel("Figure 6.2: Async MEASGD vs Async MSGD", Method::kAsyncMomentumEasgd,
       Method::kAsyncMomentumSgd);
  duel("Figure 6.3: Hogwild EASGD vs Hogwild SGD", Method::kHogwildEasgd,
       Method::kHogwildSgd);
  duel("Figure 6.4: Sync EASGD vs Original EASGD", Method::kSyncEasgd,
       Method::kOriginalEasgd);

  ds::bench::Reporter reporter("fig6_pairwise");
  reporter.set_seed(setup.ctx.config.seed);
  reporter.set_setup("workers", static_cast<double>(setup.ctx.config.workers));
  reporter.set_setup("dataset", "mnist-synthetic");
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
