// Figure 6 — the four pairwise method comparisons, each our method vs its
// existing counterpart on identical hardware and hyperparameters (§2.4):
//
//   6.1  Async EASGD   vs  Async SGD
//   6.2  Async MEASGD  vs  Async MSGD
//   6.3  Hogwild EASGD vs  Hogwild SGD
//   6.4  Sync EASGD    vs  Original EASGD
//
// Output: accuracy-vs-virtual-time traces. The paper's claim to check: the
// EASGD variant reaches any given accuracy earlier than its counterpart.
#include <cstdio>

#include "core/methods.hpp"
#include "bench_util.hpp"

namespace {

void compare(const char* title, const ds::RunResult& ours,
             const ds::RunResult& existing) {
  ds::bench::print_header(title);
  ds::bench::print_trace(ours);
  std::printf("\n");
  ds::bench::print_trace(existing);
  // Paper-style summary: time to the best accuracy both methods reach.
  const double target =
      0.95 * std::min(ours.best_accuracy(), existing.best_accuracy());
  const auto t_ours = ours.time_to_accuracy(target);
  const auto t_existing = existing.time_to_accuracy(target);
  if (t_ours && t_existing) {
    std::printf("\n-> time to %.3f accuracy: %s %.2fs vs %s %.2fs (%.2fx)\n",
                target, ours.method.c_str(), *t_ours,
                existing.method.c_str(), *t_existing, *t_existing / *t_ours);
  }
}

}  // namespace

int main() {
  using ds::Method;
  ds::bench::MnistLenetSetup setup;

  auto run = [&setup](Method m) {
    ds::AlgoContext ctx = setup.ctx;
    ds::bench::scale_budget_to_samples(ctx, m);
    return run_method(m, ctx, setup.hw);
  };

  compare("Figure 6.1: Async EASGD vs Async SGD",
          run(Method::kAsyncEasgd), run(Method::kAsyncSgd));
  compare("Figure 6.2: Async MEASGD vs Async MSGD",
          run(Method::kAsyncMomentumEasgd), run(Method::kAsyncMomentumSgd));
  compare("Figure 6.3: Hogwild EASGD vs Hogwild SGD",
          run(Method::kHogwildEasgd), run(Method::kHogwildSgd));
  compare("Figure 6.4: Sync EASGD vs Original EASGD",
          run(Method::kSyncEasgd), run(Method::kOriginalEasgd));
  return 0;
}
