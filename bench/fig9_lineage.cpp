// Figure 9 — "framework of our algorithm design": the lineage from the four
// existing methods (red blocks) to the paper's four (blue blocks), with the
// transformation each edge applies. The figure itself is a diagram; this
// binary renders it textually AND verifies, with quick live runs, that each
// derived method actually beats its parent in time-to-accuracy — the
// property the lineage encodes.
#include <cstdio>

#include "core/methods.hpp"
#include "bench_util.hpp"

namespace {

struct Edge {
  ds::Method from;
  ds::Method to;
  const char* transformation;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header("Figure 9: algorithm design lineage");

  std::printf(
      "  Original EASGD --[round-robin -> FCFS]------------> Async EASGD\n"
      "  Async SGD ------[elastic averaging]---------------> Async EASGD\n"
      "  Async MSGD -----[elastic averaging]---------------> Async MEASGD\n"
      "  Async EASGD ----[momentum]------------------------> Async MEASGD\n"
      "  Hogwild SGD ----[elastic averaging]---------------> Hogwild EASGD\n"
      "  Async EASGD ----[lock-free]-----------------------> Hogwild EASGD\n"
      "  Original EASGD -[tree reduce, Theta(P)->Theta(logP)]-> Sync EASGD\n\n");

  std::printf("methods: ");
  for (const ds::Method m : ds::all_methods()) {
    std::printf("%s%s[%s]", m == ds::all_methods().front() ? "" : ", ",
                method_name(m), ds::is_new_method(m) ? "ours" : "existing");
  }
  std::printf("\n\nverifying each edge's parent->child improvement "
              "(time to common accuracy):\n");

  const Edge edges[] = {
      {ds::Method::kAsyncSgd, ds::Method::kAsyncEasgd, "elastic averaging"},
      {ds::Method::kAsyncMomentumSgd, ds::Method::kAsyncMomentumEasgd,
       "elastic averaging"},
      {ds::Method::kHogwildSgd, ds::Method::kHogwildEasgd,
       "elastic averaging"},
      {ds::Method::kOriginalEasgd, ds::Method::kSyncEasgd, "tree reduce"},
  };

  ds::bench::MnistLenetSetup setup;
  setup.ctx.config.iterations = 150;  // quick verification budget
  args.apply(setup.ctx.config);
  std::vector<ds::RunResult> runs;
  int regressions = 0;
  for (const Edge& e : edges) {
    ds::AlgoContext from_ctx = setup.ctx;
    ds::bench::scale_budget_to_samples(from_ctx, e.from);
    const ds::RunResult parent = run_method(e.from, from_ctx, setup.hw);
    ds::AlgoContext to_ctx = setup.ctx;
    ds::bench::scale_budget_to_samples(to_ctx, e.to);
    const ds::RunResult child = run_method(e.to, to_ctx, setup.hw);
    runs.push_back(parent);
    runs.push_back(child);

    const double target =
        0.9 * std::min(parent.best_accuracy(), child.best_accuracy());
    const auto tp = parent.time_to_accuracy(target);
    const auto tc = child.time_to_accuracy(target);
    if (tp && tc) {
      const bool improved = *tc < *tp;
      regressions += !improved;
      std::printf("  %-14s -> %-14s [%-18s] %6.2fs -> %6.2fs  %s\n",
                  parent.method.c_str(), child.method.c_str(),
                  e.transformation, *tp, *tc,
                  improved ? "improved" : "REGRESSED");
    } else {
      std::printf("  %-14s -> %-14s [%-18s] target %.3f not reached\n",
                  parent.method.c_str(), child.method.c_str(),
                  e.transformation, target);
    }
  }
  std::printf("\n%s\n", regressions == 0
                            ? "every lineage edge improves, as in Figure 9"
                            : "WARNING: some edge regressed this run "
                              "(async methods are nondeterministic)");

  ds::bench::Reporter reporter("fig9_lineage");
  reporter.set_seed(setup.ctx.config.seed);
  reporter.metric("lineage.regressed_edges", regressions,
                  ds::bench::Better::kLower);
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
