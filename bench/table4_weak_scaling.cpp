// Table 4 — "Weak Scaling Time and Efficiency for ImageNet Dataset":
// GoogLeNet (300 iterations) and VGG (80 iterations) from 68 to 4352 cores
// (1 to 64 KNL nodes), ours vs the Intel-Caffe-style baseline.
//
// Single-node iteration times are calibrated from the paper's own Table 4
// anchors (GoogLeNet 1533 s / 300 iters, VGG 1318 s / 80 iters); everything
// else — jitter growth with node count, tree allreduce of the packed model,
// per-layer baseline without overlap — comes from the ClusterSim model.
//
// Shape targets: GoogLeNet ours ≈ 92% vs Caffe ≈ 87% at 2176 cores;
// VGG ours ≈ 78.5% vs Caffe ≈ 62% at 2176 cores; VGG worse than GoogLeNet.
#include <cstdio>
#include <vector>

#include "nn/models.hpp"
#include "simhw/cluster_sim.hpp"
#include "bench_util.hpp"

namespace {

void report(const char* name, const ds::ClusterSimConfig& cfg,
            std::size_t iterations, ds::bench::Reporter& reporter) {
  const ds::ClusterSim sim(cfg);
  const std::vector<std::size_t> nodes{1, 2, 4, 8, 16, 32, 64};

  std::printf("%s (%zu iterations per point)\n", name, iterations);
  std::printf("  %-22s", "cores");
  for (const std::size_t n : nodes) std::printf(" %8zu", n * 68);
  std::printf("\n");

  for (const auto& [label, sched] :
       {std::pair{"ours", ds::Schedule::kOurs},
        std::pair{"Caffe-like", ds::Schedule::kCaffeLike}}) {
    const auto points = sim.sweep(nodes, iterations, sched);
    std::printf("  %-22s", (std::string(label) + " (time s)").c_str());
    for (const auto& p : points) std::printf(" %8.0f", p.seconds);
    std::printf("\n  %-22s", (std::string(label) + " (efficiency)").c_str());
    for (const auto& p : points) {
      std::printf(" %7.1f%%", 100.0 * p.efficiency);
    }
    std::printf("\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      reporter.metric(ds::bench::slug(name) + "." + ds::bench::slug(label) +
                          ".nodes_" + std::to_string(nodes[i]) + ".efficiency",
                      points[i].efficiency, ds::bench::Better::kHigher);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::Reporter reporter("table4_weak_scaling");
  ds::bench::print_header(
      "Table 4: weak scaling, ImageNet on 68..4352 KNL cores");

  ds::ClusterSimConfig googlenet;
  googlenet.base_iter_seconds = 1533.0 / 300.0;
  googlenet.weight_bytes = ds::paper_googlenet().weight_bytes;
  googlenet.comm_layers = ds::paper_googlenet().comm_layers;
  report("GoogLeNet", googlenet, args.has_iters ? args.iters : 300, reporter);

  ds::ClusterSimConfig vgg;
  vgg.base_iter_seconds = 1318.0 / 80.0;
  vgg.weight_bytes = ds::paper_vgg19().weight_bytes;
  vgg.comm_layers = ds::paper_vgg19().comm_layers;
  report("VGG", vgg, args.has_iters ? args.iters : 80, reporter);

  std::printf(
      "paper (2176 cores): GoogLeNet ours 92.3%% vs Intel Caffe 87%%;\n"
      "                    VGG ours 78.5%% vs Intel Caffe 62%%\n"
      "paper (4352 cores): GoogLeNet ours 91.6%%, VGG ours 80.2%%\n");
  args.describe(reporter);
  return args.finish(reporter);
}
