// serve_latency — the serving front-end's latency/goodput benchmark
// (DESIGN.md §12). Three scenarios over the LeNet replica fleet, every one
// a deterministic virtual-time simulation (same seed ⇒ identical numbers):
//
//   1. batching   — the same 6k-rps Poisson trace served by a forced
//                   batch-1 server and a max-batch-8 server. Headline
//                   metric: serve.batch_goodput_ratio, the ≥2× goodput
//                   win dynamic batching buys at equal-or-better p99
//                   (launch-overhead amortization; real forward passes).
//   2. overload   — a bursty trace at ~2× batch-8 capacity. Admission
//                   control sheds on arrival instead of queueing
//                   unboundedly: admitted p99 stays inside the deadline,
//                   shed rate and peak queue depth are reported.
//   3. autoscale  — a step trace (6k → 24k rps) against the reactive
//                   autoscaler; reports scale-up count and goodput.
//
// Scenario 1 runs the real model math (replicas restored from an actual
// nn/serialize checkpoint); 2 and 3 are timing-only scheduling studies at
// request counts where the math would dominate the bench's own runtime.
//
//   --seed N      override the workload seeds
//   --json PATH   write the deepscale.bench.v1 document (CI gate)
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "nn/serialize.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace {

using ds::serve::ServeResult;

void print_result(const char* label, const ServeResult& r) {
  std::printf(
      "%-22s offered %7.0f rps  goodput %7.0f rps  served %5zu  shed %5zu "
      "(%4.1f%%)  mean batch %4.2f  p50 %6.3f ms  p99 %6.3f ms\n",
      label, r.offered_rps, r.goodput_rps, r.served, r.shed,
      100.0 * r.shed_rate, r.mean_batch, r.latency_quantile_ms(0.50),
      r.latency_quantile_ms(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  const std::uint64_t seed = args.has_seed ? args.seed : 4242;

  const ds::TrainTest data = ds::mnist_like(seed, /*train=*/256, /*test=*/64);
  const ds::GpuSystem device(ds::GpuSystemConfig{}, ds::paper_lenet(),
                             /*sample_bytes=*/28.0 * 28.0 * 4.0);

  // Replicas restore from a real checkpoint — the serving deployment path
  // (train elsewhere, snapshot, fan out to the fleet).
  const std::string ckpt = "serve_latency_replica.dscp";
  {
    ds::Rng rng(seed);
    const auto trained = ds::make_lenet_s(rng);
    ds::save_checkpoint(*trained, ckpt);
  }
  const ds::NetworkFactory factory = [seed]() {
    ds::Rng rng(seed + 1);  // init is overwritten by the checkpoint restore
    return ds::make_lenet_s(rng);
  };

  ds::bench::Reporter reporter("serve_latency");
  reporter.set_seed(seed);
  reporter.set_setup("model", "lenet_s");
  reporter.set_setup("device", "paper_lenet/GpuSystemConfig defaults");
  args.describe(reporter);

  // --- scenario 1: batch-1 vs batch-8 at fixed load --------------------
  ds::bench::print_header("serve_latency 1: dynamic batching vs batch-1");
  ds::serve::WorkloadConfig fixed;
  fixed.rate_rps = 6000.0;
  fixed.duration_s = 0.5;
  fixed.seed = seed;
  const std::vector<double> fixed_arrivals = generate_arrivals(fixed);

  ds::serve::ServerConfig b1;
  b1.batch.max_batch = 1;
  b1.checkpoint_path = ckpt;
  ds::serve::Server s1(factory, device, b1);
  const ServeResult r1 = s1.run(fixed_arrivals, data.train);
  print_result("batch=1 (forced)", r1);

  ds::serve::ServerConfig b8;
  b8.batch.max_batch = 8;
  b8.checkpoint_path = ckpt;
  ds::serve::Server s8(factory, device, b8);
  const ServeResult r8 = s8.run(fixed_arrivals, data.train);
  print_result("batch<=8 (dynamic)", r8);

  const double ratio = r8.goodput_rps / r1.goodput_rps;
  std::printf("-> goodput ratio %.2fx at p99 %.3f ms vs %.3f ms\n", ratio,
              r8.latency_quantile_ms(0.99), r1.latency_quantile_ms(0.99));
  reporter.metric("serve.batch_goodput_ratio", ratio,
                  ds::bench::Better::kHigher, "x");
  reporter.metric("serve.b1.goodput_rps", r1.goodput_rps,
                  ds::bench::Better::kHigher, "rps");
  reporter.metric("serve.b8.goodput_rps", r8.goodput_rps,
                  ds::bench::Better::kHigher, "rps");
  reporter.metric("serve.b1.p99_ms", r1.latency_quantile_ms(0.99),
                  ds::bench::Better::kLower, "ms");
  reporter.metric("serve.b8.p99_ms", r8.latency_quantile_ms(0.99),
                  ds::bench::Better::kLower, "ms");
  reporter.metric("serve.b8.mean_batch", r8.mean_batch,
                  ds::bench::Better::kNone, "");
  // Cross-check the log2-histogram quantile against the exact sorted one:
  // the window p99 (µs → ms) must bracket the exact value within its
  // factor-of-2 bucket resolution. Informational, printed for the README.
  // quantile() reads the kEmptyQuantile NaN sentinel on a served-nothing
  // window; report 0 rather than poisoning the bench JSON.
  const double hist_p99_usec = r8.latency_usec.quantile(0.99);
  const double hist_p99_ms =
      std::isnan(hist_p99_usec) ? 0.0 : hist_p99_usec / 1e3;
  std::printf("   histogram p99 %.3f ms (log2-bucket estimate)\n",
              hist_p99_ms);
  reporter.metric("serve.b8.hist_p99_ms", hist_p99_ms,
                  ds::bench::Better::kNone, "ms");

  // --- scenario 2: admission control under 2x overload ------------------
  ds::bench::print_header("serve_latency 2: overload (2x capacity, bursty)");
  ds::serve::WorkloadConfig burst;
  burst.pattern = ds::serve::ArrivalPattern::kBursty;
  burst.rate_rps = 20000.0;
  burst.burst_rate_rps = 40000.0;
  burst.duration_s = 0.25;
  burst.seed = seed + 2;

  ds::serve::ServerConfig over;
  over.run_model = false;
  over.checkpoint_path.clear();
  ds::serve::Server so(factory, device, over);
  const ServeResult ro = so.run(generate_arrivals(burst), data.train);
  print_result("overload 2x", ro);
  std::printf("-> peak queue %zu, deadline misses %zu\n", ro.peak_queue_depth,
              ro.deadline_misses);
  reporter.metric("serve.overload.admitted_p99_ms",
                  ro.latency_quantile_ms(0.99), ds::bench::Better::kLower,
                  "ms");
  reporter.metric("serve.overload.shed_rate", ro.shed_rate,
                  ds::bench::Better::kNone, "");
  reporter.metric("serve.overload.goodput_rps", ro.goodput_rps,
                  ds::bench::Better::kHigher, "rps");
  reporter.metric("serve.overload.deadline_misses",
                  static_cast<double>(ro.deadline_misses),
                  ds::bench::Better::kNone, "");

  // --- scenario 3: autoscaler reaction to a load step --------------------
  ds::bench::print_header("serve_latency 3: autoscale on a 4x load step");
  ds::serve::WorkloadConfig step;
  step.pattern = ds::serve::ArrivalPattern::kStep;
  step.rate_rps = 6000.0;
  step.step_rate_rps = 24000.0;
  step.step_at_s = 0.1;
  step.duration_s = 0.25;
  step.seed = seed + 3;

  ds::serve::ServerConfig scale;
  scale.run_model = false;
  scale.replicas = 1;
  scale.autoscale.enabled = true;
  scale.autoscale.min_replicas = 1;
  scale.autoscale.max_replicas = 4;
  scale.autoscale.scale_up_queue_depth = 16;
  scale.autoscale.activation_delay_s = 2e-3;
  ds::serve::Server ss(factory, device, scale);
  const ServeResult rs = ss.run(generate_arrivals(step), data.train);
  print_result("step + autoscale", rs);
  std::printf("-> scale ups %zu, final replicas %zu\n", rs.scale_ups,
              rs.final_replicas);
  reporter.metric("serve.autoscale.goodput_rps", rs.goodput_rps,
                  ds::bench::Better::kHigher, "rps");
  reporter.metric("serve.autoscale.scale_ups",
                  static_cast<double>(rs.scale_ups), ds::bench::Better::kNone,
                  "");

  std::remove(ckpt.c_str());
  return args.finish(reporter);
}
