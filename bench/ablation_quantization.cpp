// Ablation — gradient compression (§3.4's deferred future work, implemented
// here): Sync SGD with fp32, int8, and error-feedback 1-bit gradients on
// identical data/model/hardware. Reports accuracy traces, final accuracy,
// and the communication-time reduction on the wire.
#include <cstdio>
#include <vector>

#include "core/sync_algorithms.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header(
      "Ablation: gradient compression on the wire (Sync SGD, LeNet)");

  std::vector<ds::RunResult> runs;
  for (const ds::GradCompression c :
       {ds::GradCompression::kNone, ds::GradCompression::kInt8,
        ds::GradCompression::kOneBit}) {
    ds::bench::MnistLenetSetup setup;
    setup.ctx.config.compression = c;
    setup.ctx.config.iterations = 250;
    args.apply(setup.ctx.config);
    runs.push_back(run_sync_sgd(setup.ctx, setup.hw));
  }

  for (const ds::RunResult& r : runs) {
    std::printf("\n");
    ds::bench::print_trace(r);
  }

  std::printf("\n%-26s %10s %14s %14s %10s\n", "codec", "final acc",
              "comm (virt s)", "total (virt s)", "comm cut");
  const double base_comm =
      runs[0].ledger.seconds(ds::Phase::kGpuGpuParamComm);
  for (const ds::RunResult& r : runs) {
    const double comm = r.ledger.seconds(ds::Phase::kGpuGpuParamComm);
    std::printf("%-26s %10.3f %14.3f %14.3f %9.1fx\n", r.method.c_str(),
                r.final_accuracy, comm, r.total_seconds, base_comm / comm);
  }
  std::printf(
      "\nExpected shape: int8 and 1-bit match fp32 accuracy within noise "
      "(error feedback\nabsorbs the 1-bit loss) while cutting wire time; "
      "with LeNet's small weights the\nlatency floor bounds the total-time "
      "win — exactly why §5.2 packs messages first.\n");

  ds::bench::Reporter reporter("ablation_quantization");
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
