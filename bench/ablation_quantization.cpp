// Ablation — quantization at both ends of the pipeline (§3.4's deferred
// future work, implemented here):
//   * gradient compression on the wire — Sync SGD with fp32, int8, and
//     error-feedback 1-bit gradients on identical data/model/hardware;
//   * int8 COMPUTE — the quantized-GEMM conv kernel (ConvAlgo::kInt8),
//     reported as measured end-to-end step time against the fp32 paths.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/sync_algorithms.hpp"
#include "tensor/conv_algo.hpp"
#include "bench_util.hpp"

namespace {

/// Wall-clock mean forward+backward step of alexnet_s (batch 8) with the
/// process conv dispatch pinned to `algo`; one warm-up step + `steps` timed.
double alexnet_step_ms(ds::ConvAlgo algo, std::size_t steps) {
  ds::set_process_conv_algo(algo);
  ds::Rng rng(7);
  auto net = ds::make_alexnet_s(rng);
  ds::Tensor x({8, 3, 32, 32});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<std::int32_t> labels(8);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 10);
  }
  net->zero_grads();
  net->forward_backward(x, labels);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < steps; ++s) {
    net->zero_grads();
    net->forward_backward(x, labels);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ds::set_process_conv_algo(ds::ConvAlgo::kAuto);
  return 1e3 * seconds / static_cast<double>(steps);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header(
      "Ablation: gradient compression on the wire (Sync SGD, LeNet)");

  std::vector<ds::RunResult> runs;
  for (const ds::GradCompression c :
       {ds::GradCompression::kNone, ds::GradCompression::kInt8,
        ds::GradCompression::kOneBit}) {
    ds::bench::MnistLenetSetup setup;
    setup.ctx.config.compression = c;
    setup.ctx.config.iterations = 250;
    args.apply(setup.ctx.config);
    runs.push_back(run_sync_sgd(setup.ctx, setup.hw));
  }

  for (const ds::RunResult& r : runs) {
    std::printf("\n");
    ds::bench::print_trace(r);
  }

  std::printf("\n%-26s %10s %14s %14s %10s\n", "codec", "final acc",
              "comm (virt s)", "total (virt s)", "comm cut");
  const double base_comm =
      runs[0].ledger.seconds(ds::Phase::kGpuGpuParamComm);
  for (const ds::RunResult& r : runs) {
    const double comm = r.ledger.seconds(ds::Phase::kGpuGpuParamComm);
    std::printf("%-26s %10.3f %14.3f %14.3f %9.1fx\n", r.method.c_str(),
                r.final_accuracy, comm, r.total_seconds, base_comm / comm);
  }
  std::printf(
      "\nExpected shape: int8 and 1-bit match fp32 accuracy within noise "
      "(error feedback\nabsorbs the 1-bit loss) while cutting wire time; "
      "with LeNet's small weights the\nlatency floor bounds the total-time "
      "win — exactly why §5.2 packs messages first.\n");

  // --- int8 compute: quantized-GEMM conv forward, end to end ------------
  const std::size_t steps = 6;
  const double ms_im2col = alexnet_step_ms(ds::ConvAlgo::kIm2col, steps);
  const double ms_auto = alexnet_step_ms(ds::ConvAlgo::kAuto, steps);
  const double ms_int8 = alexnet_step_ms(ds::ConvAlgo::kInt8, steps);
  std::printf(
      "\nInt8 compute (alexnet_s, batch 8, measured wall clock, %zu "
      "steps):\n"
      "  fp32 im2col %8.3f ms/step\n"
      "  fp32 auto   %8.3f ms/step (direct/Winograd dispatch)\n"
      "  int8 gemm   %8.3f ms/step (%0.2fx vs fp32 im2col; backward stays "
      "fp32)\n",
      steps, ms_im2col, ms_auto, ms_int8, ms_im2col / ms_int8);

  ds::bench::Reporter reporter("ablation_quantization");
  args.describe(reporter);
  reporter.metric("wall.alexnet_step_ms_fp32_im2col", ms_im2col,
                  ds::bench::Better::kNone, "ms");
  reporter.metric("wall.alexnet_step_ms_fp32_auto", ms_auto,
                  ds::bench::Better::kNone, "ms");
  reporter.metric("wall.alexnet_step_ms_int8", ms_int8,
                  ds::bench::Better::kNone, "ms");
  return ds::bench::report_runs(args, reporter, runs);
}
