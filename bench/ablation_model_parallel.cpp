// Ablation — data parallelism vs model parallelism (paper §2.3, Figure 4).
//
// The paper's argument for building everything on data parallelism: "because
// both the batch size (<= 2048) and the picture size typically are
// relatively small, the matrix operations are not large. For example,
// parallelizing a 2048×1024×1024 matrix multiplication only needs one or
// two machines."
//
// This bench makes the trade-off quantitative with the paper's own example
// layer (1024→1024 FC): per-iteration communication time under the α-β
// model for both strategies across batch sizes and machine counts, plus the
// per-machine GEMM work that shows how little compute each machine gets.
#include <cstdio>

#include "core/model_parallel.hpp"
#include "tensor/gemm.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::Reporter reporter("ablation_model_parallel");
  ds::bench::print_header(
      "Ablation (2.3): data parallelism vs model parallelism");

  const std::size_t in = 1024, out = 1024;
  const ds::LinkModel net = ds::fdr_infiniband();

  std::printf("FC layer %zux%zu over Mellanox FDR, per-iteration comm time "
              "(ms):\n\n", in, out);
  std::printf("%7s %7s | %14s %14s | %12s\n", "batch", "ranks",
              "model-par", "data-par", "winner");
  for (const std::size_t ranks : {2UL, 4UL, 8UL}) {
    for (const std::size_t batch : {16UL, 64UL, 256UL, 1024UL, 2048UL}) {
      const double mp_bytes = ds::ModelParallelFC::comm_bytes_per_iteration(
          batch, in, out, ranks);
      const double dp_bytes =
          ds::ModelParallelFC::data_parallel_comm_bytes(in, out, ranks);
      // Both schedules move their volume in ~2(P−1)+… messages; charge one
      // α per (P−1) stage either way so latency does not skew the contrast.
      const double msgs = 3.0 * static_cast<double>(ranks - 1);
      const double mp_ms = (msgs * net.alpha + mp_bytes * net.beta) * 1e3;
      const double dp_ms =
          (2.0 * static_cast<double>(ranks - 1) * net.alpha +
           dp_bytes * net.beta) * 1e3;
      std::printf("%7zu %7zu | %14.3f %14.3f | %12s\n", batch, ranks, mp_ms,
                  dp_ms, mp_ms < dp_ms ? "model-par" : "data-par");
      reporter.metric("comm_ms.ranks_" + std::to_string(ranks) + ".batch_" +
                          std::to_string(batch) + ".data_par",
                      dp_ms, ds::bench::Better::kLower, "ms");
    }
  }

  std::printf(
      "\nPer-machine GEMM work of the paper's 2048x1024x1024 example:\n");
  for (const std::size_t ranks : {1UL, 2UL, 4UL, 8UL, 16UL}) {
    const double flops = ds::gemm_flops(2048, 1024, 1024) /
                         static_cast<double>(ranks);
    std::printf("  %2zu machine(s): %7.2f GFLOP each (at 75 GFLOP/s: %6.2f ms)\n",
                ranks, flops / 1e9, flops / 75e9 * 1e3);
  }
  std::printf(
      "\nExpected shape (2.3): model parallelism only wins at small batches "
      "(activations\nsmaller than weights), and the per-machine work "
      "vanishes within a few machines —\n\"parallelizing a 2048x1024x1024 "
      "matrix multiplication only needs one or two\nmachines\", hence the "
      "paper's (and this repo's) data-parallel design.\n");
  args.describe(reporter);
  return args.finish(reporter);
}
