// Table 2 — "InfiniBand Performance under α-β Model".
//
// Prints the α/β parameters of the three networks the paper tabulates, then
// validates the fabric against them with a virtual ping-pong sweep (the
// measured per-message time must equal α + β·n on every link) and shows the
// latency-vs-bandwidth crossover that motivates §5.2's single-message
// packing.
#include <cstdio>
#include <thread>

#include "comm/fabric.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::Reporter reporter("table2_networks");
  ds::bench::print_header("Table 2: InfiniBand performance under the α-β model");

  std::printf("%-32s %14s %18s\n", "Network", "alpha (latency)",
              "beta (1/bandwidth)");
  for (const ds::LinkModel& link : ds::table2_networks()) {
    std::printf("%-32s %11.1f us %15.1f ns/B\n", link.name.c_str(),
                link.alpha * 1e6, link.beta * 1e9);
  }

  std::printf("\nPing-pong validation (fabric round-trip / 2 vs model):\n");
  std::printf("%-32s %12s %14s %14s\n", "Network", "bytes", "measured(us)",
              "model(us)");
  for (const ds::LinkModel& link : ds::table2_networks()) {
    for (const std::size_t bytes :
         {4UL, 4096UL, 1048576UL, 67108864UL}) {
      const std::size_t floats = bytes / sizeof(float);
      ds::Fabric fabric(2, link);
      std::thread peer([&fabric, floats] {
        std::vector<float> payload = fabric.recv(1, 0, 1);
        fabric.send(1, 0, 2, std::move(payload));
      });
      fabric.send(0, 1, 1, std::vector<float>(floats, 1.0f));
      fabric.recv(0, 1, 2);
      peer.join();
      const double measured = fabric.clock(0) / 2.0;
      const double model = link.transfer_seconds(static_cast<double>(bytes));
      std::printf("%-32s %12zu %14.2f %14.2f\n", link.name.c_str(), bytes,
                  measured * 1e6, model * 1e6);
      reporter.metric("pingpong." + ds::bench::slug(link.name) + "." +
                          std::to_string(bytes) + "b_us",
                      measured * 1e6, ds::bench::Better::kLower, "us");
    }
  }

  std::printf(
      "\nLatency share of a message (why packing many small messages into\n"
      "one matters, §5.2): bytes where alpha is >=50%% of the cost:\n");
  for (const ds::LinkModel& link : ds::table2_networks()) {
    std::printf("%-32s alpha dominates below %.0f KB\n", link.name.c_str(),
                link.alpha / link.beta / 1024.0);
  }
  args.describe(reporter);
  return args.finish(reporter);
}
