// Figure 13 — "The benefits of using more machines and more data: (1) get
// the target accuracy in a shorter time, and (2) achieve a higher accuracy
// in a fixed time."
//
// Weak scaling with Algorithm 4 (Communication-Efficient EASGD on a KNL
// cluster): every node holds one full data copy and the per-node batch size
// is fixed (the paper uses Cifar with batch 64 per node), so adding nodes
// adds data processed per unit time. Output: loss/accuracy-vs-virtual-time
// curves for 1, 2, 4, 8 nodes — a vertical line (fixed time) meets a lower
// loss with more nodes; a horizontal line (fixed loss) is met earlier.
#include <cstdio>
#include <vector>

#include "core/knl_algorithms.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header(
      "Figure 13: more machines + more data (weak scaling benefit)");

  std::vector<ds::RunResult> runs;
  for (const std::size_t nodes : {1UL, 2UL, 4UL, 8UL}) {
    ds::bench::MnistLenetSetup setup;
    setup.ctx.config.workers = nodes;
    setup.ctx.config.iterations = 160;
    setup.ctx.config.eval_every = 10;
    setup.ctx.config.batch_size = 32;
    args.apply(setup.ctx.config);
    // Re-apply the moving-rate rule for this node count.
    setup.ctx.config.rho = 0.9f / (static_cast<float>(nodes) *
                                   setup.ctx.config.learning_rate);

    ds::ClusterTiming timing;
    timing.model = ds::paper_lenet();

    ds::RunResult r = run_cluster_sync_easgd(setup.ctx, timing);
    r.method = "EASGD " + std::to_string(nodes) + " node(s)";
    runs.push_back(std::move(r));
  }

  for (const ds::RunResult& r : runs) {
    std::printf("\n");
    ds::bench::print_trace(r);
  }

  // The two readings of Figure 13.
  std::printf("\n(1) time to fixed accuracy 0.90:\n");
  for (const ds::RunResult& r : runs) {
    const auto t = r.time_to_accuracy(0.90);
    if (t) {
      std::printf("  %-18s %7.2f s\n", r.method.c_str(), *t);
    } else {
      std::printf("  %-18s not reached\n", r.method.c_str());
    }
  }
  std::printf("\n(2) accuracy at fixed virtual time 0.5 s:\n");
  for (const ds::RunResult& r : runs) {
    double acc = 0.0;
    for (const ds::TracePoint& p : r.trace) {
      if (p.vtime <= 0.5) acc = p.accuracy;
    }
    std::printf("  %-18s %6.3f\n", r.method.c_str(), acc);
  }
  std::printf("\n");
  ds::bench::print_csv(runs);

  ds::bench::Reporter reporter("fig13_weak_scaling_benefit");
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
