// Ablation — fault injection on the communication fabric.
//
// The paper's experiments assume a fault-free cluster; this harness asks
// what the EASGD family's schedules cost (and preserve) when the fabric
// misbehaves. Three sweeps over the SPMD fabric runs plus a cluster-scale
// degradation table:
//
//   1. Drop rate: with a retransmit budget sized to the loss rate the wire
//      is effectively reliable — the training math, and therefore accuracy,
//      is untouched; only virtual time pays. (Undersize max_send_attempts
//      and a loss eventually slips through: the run then aborts cleanly via
//      the receive timeout instead of hanging.)
//   2. Stragglers: both schedules' makespans track the slowest rank (fixed
//      per-rank work), but the synchronous schedule drags EVERY round while
//      the parameter server keeps serving the fast workers at full rate.
//   3. Scheduled crashes: sync aborts the failed round cleanly with partial
//      progress; the async server keeps serving the survivors.
//
// All fault draws are seeded (FaultPlan.seed): the sync-fabric and cluster
// rows reproduce bit-for-bit. The async parameter-server times wobble by a
// few percent run to run — FCFS service order tracks the real scheduler,
// which is the point of the asynchronous family (§8).
#include <cstdio>

#include "bench_util.hpp"
#include "core/fabric_algorithms.hpp"
#include "obs/monitor/monitor.hpp"
#include "simhw/cluster_sim.hpp"

namespace {

ds::bench::MnistLenetSetup make_setup(const ds::bench::BenchArgs& args) {
  ds::bench::MnistLenetSetup setup(1024, 256);
  setup.ctx.config.iterations = 120;
  setup.ctx.config.eval_every = 30;
  args.apply(setup.ctx.config);
  return setup;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::Reporter reporter("ablation_faults");
  std::vector<ds::RunResult> runs;
  ds::bench::print_header("Ablation: fault injection on the fabric");

  // ---------------------------------------------------------------- drops
  std::printf("Message drop rate (fabric Sync EASGD, retransmit repairs):\n");
  std::printf("%8s %12s %12s %10s %12s %10s %12s %8s\n", "drop", "vtime (s)",
              "slowdown", "final acc", "survived", "messages", "wire MB",
              "retrans");
  double clean_seconds = 0.0;
  for (const double drop : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    ds::bench::MnistLenetSetup setup = make_setup(args);
    ds::FabricClusterConfig cluster;
    cluster.faults.with_drop(drop);
    // Size the retransmit budget to the loss rate so no message is ever
    // lost for good (0.2^12 across ~1.4k messages is negligible).
    cluster.faults.max_send_attempts = 12;
    ds::RunResult r = run_fabric_easgd(setup.ctx, cluster);
    if (drop == 0.0) clean_seconds = r.total_seconds;
    std::printf("%8.2f %12.4f %11.2fx %10.3f %9zu/%zu %10llu %12.1f %8llu\n",
                drop, r.total_seconds, r.total_seconds / clean_seconds,
                r.final_accuracy, r.workers_survived, r.workers,
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<double>(r.bytes_sent) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(r.retransmits));
    r.method += " drop=" + std::to_string(drop).substr(0, 4);
    runs.push_back(std::move(r));
  }
  std::printf("(accuracy must be IDENTICAL down the column: drops cost "
              "time and retransmits, never correctness)\n\n");

  // ------------------------------------------------------------ stragglers
  std::printf("Straggler factor on one rank (sync gates, server absorbs):\n");
  std::printf("%8s %16s %16s\n", "factor", "sync vtime (s)",
              "async vtime (s)");
  for (const double factor : {1.0, 2.0, 4.0, 8.0}) {
    ds::bench::MnistLenetSetup setup = make_setup(args);
    ds::FabricClusterConfig cluster;
    if (factor > 1.0) cluster.faults.with_straggler(1, factor);
    const ds::RunResult sync_r = run_fabric_easgd(setup.ctx, cluster);
    const ds::RunResult async_r = run_fabric_async_easgd(setup.ctx, cluster);
    std::printf("%8.1f %16.4f %16.4f\n", factor, sync_r.total_seconds,
                async_r.total_seconds);
    const std::string suffix =
        "straggler_x" + std::to_string(static_cast<int>(factor));
    reporter.metric("sync." + suffix + ".vseconds", sync_r.total_seconds,
                    ds::bench::Better::kLower, "s");
  }
  std::printf("\n");

  // --------------------------------------------------------------- crashes
  std::printf("Scheduled rank crash at half the clean run time:\n");
  {
    ds::bench::MnistLenetSetup setup = make_setup(args);
    ds::FabricClusterConfig cluster;
    const ds::RunResult clean = run_fabric_easgd(setup.ctx, cluster);
    cluster.faults.with_crash(1, clean.total_seconds / 2.0);
    cluster.faults.recv_poll_seconds = 2.0e-4;
    const ds::RunResult hit = run_fabric_easgd(setup.ctx, cluster);
    std::printf("  sync : %s\n", hit.fault_summary().c_str());
  }
  {
    ds::bench::MnistLenetSetup setup = make_setup(args);
    ds::FabricClusterConfig cluster;
    const ds::RunResult clean = run_fabric_async_easgd(setup.ctx, cluster);
    cluster.faults.with_crash(2, clean.total_seconds / 4.0);
    cluster.faults.recv_poll_seconds = 2.0e-4;
    const ds::RunResult hit = run_fabric_async_easgd(setup.ctx, cluster);
    std::printf("  async: %s\n", hit.fault_summary().c_str());
  }
  std::printf("(sync aborts the failed round cleanly; the parameter server "
              "keeps serving survivors)\n\n");

  // ------------------------------------------------ online detector accuracy
  // The health monitor's detectors against known injected faults: each row
  // runs one fault scenario with the monitor installed and scores whether
  // the right detector fired — and, for the straggler, whether it named the
  // injected rank. The clean row counts false positives.
  std::printf("Online health monitor vs injected faults:\n");
  std::printf("%14s %22s %8s %12s %8s\n", "scenario", "detector", "fired",
              "named rank", "alerts");
  {
    namespace mon = ds::obs::monitor;
    // Size the sampling window off the clean makespan: ~60 windows per run
    // gives every rank a few compute steps per window.
    ds::bench::MnistLenetSetup sizing = make_setup(args);
    const ds::FabricClusterConfig clean_cluster;
    const ds::RunResult clean_run = run_fabric_easgd(sizing.ctx, clean_cluster);
    mon::MonitorConfig mcfg;
    mcfg.sample_interval_vs = clean_run.total_seconds / 60.0;

    auto monitored_run = [&](const ds::FabricClusterConfig& cluster,
                             const mon::MonitorConfig& cfg) {
      ds::bench::MnistLenetSetup setup = make_setup(args);
      mon::Monitor monitor(cfg);
      {
        const mon::InstallScope scope(monitor);
        (void)run_fabric_easgd(setup.ctx, cluster);
      }
      return monitor.alerts();
    };
    const auto first_of = [](const std::vector<mon::Alert>& alerts,
                             mon::AlertKind kind) -> const mon::Alert* {
      for (const mon::Alert& a : alerts) {
        if (a.kind == kind) return &a;
      }
      return nullptr;
    };

    {  // a 3x straggler on rank 1 must be caught AND named
      ds::FabricClusterConfig cluster;
      cluster.faults.with_straggler(1, 3.0);
      const auto alerts = monitored_run(cluster, mcfg);
      const mon::Alert* hit =
          first_of(alerts, mon::AlertKind::kStragglerDrift);
      std::printf("%14s %22s %8s %12s %8zu\n", "straggler 3x",
                  "straggler_drift", hit != nullptr ? "yes" : "MISS",
                  hit != nullptr ? std::to_string(hit->rank).c_str() : "-",
                  alerts.size());
      reporter.metric("monitor.straggler_hit",
                      hit != nullptr && hit->rank == 1 ? 1.0 : 0.0,
                      ds::bench::Better::kHigher, "");
    }
    {  // heavy drops = sustained retransmissions; any steady rate is a storm
      ds::FabricClusterConfig cluster;
      cluster.faults.with_drop(0.20);
      cluster.faults.max_send_attempts = 12;
      mon::MonitorConfig storm_cfg = mcfg;
      storm_cfg.storm_retransmits_per_vs = 10.0;
      const auto alerts = monitored_run(cluster, storm_cfg);
      const mon::Alert* hit =
          first_of(alerts, mon::AlertKind::kRetransmitStorm);
      std::printf("%14s %22s %8s %12s %8zu\n", "drop 20%",
                  "retransmit_storm", hit != nullptr ? "yes" : "MISS", "-",
                  alerts.size());
      reporter.metric("monitor.storm_hit", hit != nullptr ? 1.0 : 0.0,
                      ds::bench::Better::kHigher, "");
    }
    {  // fault-free run: every alert here is a false positive
      const auto alerts = monitored_run(ds::FabricClusterConfig{}, mcfg);
      std::printf("%14s %22s %8s %12s %8zu\n", "clean", "(none expected)",
                  alerts.empty() ? "no" : "FALSE+", "-", alerts.size());
      reporter.metric("monitor.clean_false_alerts",
                      static_cast<double>(alerts.size()),
                      ds::bench::Better::kLower, "");
    }
  }
  std::printf("\n");

  // ------------------------------------------------- cluster-scale table
  std::printf("Weak-scaling simulator, 16 nodes, 100 iterations:\n");
  std::printf("%28s %12s %10s\n", "scenario", "seconds", "alive");
  {
    ds::ClusterSimConfig config;
    const ds::ClusterSim sim(config);
    const ds::WeakScalingPoint base =
        sim.run(16, 100, ds::Schedule::kOurs);
    std::printf("%28s %12.1f %7zu/16\n", "fault-free", base.seconds,
                base.surviving_nodes);

    ds::ClusterSimConfig straggle = config;
    straggle.faults.with_straggler(3, 2.0);
    const ds::WeakScalingPoint slow =
        ds::ClusterSim(straggle).run(16, 100, ds::Schedule::kOurs);
    std::printf("%28s %12.1f %7zu/16\n", "one 2x straggler", slow.seconds,
                slow.surviving_nodes);

    ds::ClusterSimConfig crashes = config;
    crashes.faults.with_crash(5, base.seconds / 4.0)
        .with_crash(11, base.seconds / 2.0);
    const ds::WeakScalingPoint hit =
        ds::ClusterSim(crashes).run(16, 100, ds::Schedule::kOurs);
    std::printf("%28s %12.1f %7zu/16\n", "two staggered crashes",
                hit.seconds, hit.surviving_nodes);
  }
  std::printf("\nExpected shape: drop rows pay time only; straggler cost is "
              "linear in the factor\nfor both schedules (fixed per-rank "
              "work) but the server's absolute time stays far\nlower; "
              "crashes degrade, never hang.\n");

  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
