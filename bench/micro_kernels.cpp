// Compute-kernel microbenchmarks (google-benchmark): GEMM across the shapes
// the model zoo actually produces, im2col/col2im, per-layer forward/backward,
// the EASGD update rules, and whole-network steps. These are the knobs of
// the virtual-time calibration — gemm throughput here is what bounds the
// wall-clock cost of every experiment binary.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "core/easgd_rules.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "support/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace {

void fill(std::vector<float>& v, ds::Rng& rng) {
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
}

void set_gflops(benchmark::State& state, double flops_per_iter) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

// ----------------------------------- GEMM -----------------------------------

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  fill(a, rng);
  fill(b, rng);
  for (auto _ : state) {
    ds::gemm(ds::Transpose::kNo, ds::Transpose::kNo, n, n, n, 1.0f, a.data(),
             b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, ds::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNNThreaded(benchmark::State& state) {
  // The opt-in deterministic threaded path (bitwise identical to serial).
  const std::size_t n = 256;
  ds::kernel_config().gemm_threads = static_cast<std::size_t>(state.range(0));
  ds::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  fill(a, rng);
  fill(b, rng);
  for (auto _ : state) {
    ds::gemm(ds::Transpose::kNo, ds::Transpose::kNo, n, n, n, 1.0f, a.data(),
             b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  ds::kernel_config().gemm_threads = 1;
  set_gflops(state, ds::gemm_flops(n, n, n));
}
// Real time, not CPU time: the calling thread sleeps in wait_idle while the
// pool computes, so the CPU-time rate would be wildly inflated.
BENCHMARK(BM_GemmNNThreaded)->Arg(2)->Arg(4)->UseRealTime();

void BM_GemmConvShape(benchmark::State& state) {
  // The LeNet conv2 shape: [12 x 150] · [150 x 64] per image.
  ds::Rng rng(1);
  std::vector<float> a(12 * 150), b(150 * 64), c(12 * 64);
  fill(a, rng);
  fill(b, rng);
  for (auto _ : state) {
    ds::gemm(ds::Transpose::kNo, ds::Transpose::kNo, 12, 64, 150, 1.0f,
             a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, ds::gemm_flops(12, 64, 150));
}
BENCHMARK(BM_GemmConvShape);

void BM_GemmConvShapeBatched(benchmark::State& state) {
  // The same conv2 layer lowered batch-at-once: [12 x 150] · [150 x 32·64].
  const std::size_t batch = 32;
  ds::Rng rng(1);
  std::vector<float> a(12 * 150), b(150 * batch * 64), c(12 * batch * 64);
  fill(a, rng);
  fill(b, rng);
  for (auto _ : state) {
    ds::gemm(ds::Transpose::kNo, ds::Transpose::kNo, 12, batch * 64, 150,
             1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, ds::gemm_flops(12, batch * 64, 150));
}
BENCHMARK(BM_GemmConvShapeBatched);

void BM_GemmTransposed(benchmark::State& state) {
  // The backward dW shape: A^T path.
  const std::size_t m = 64, n = 192, k = 32;
  ds::Rng rng(1);
  std::vector<float> a(k * m), b(k * n), c(m * n);
  fill(a, rng);
  fill(b, rng);
  for (auto _ : state) {
    ds::gemm(ds::Transpose::kYes, ds::Transpose::kNo, m, n, k, 1.0f, a.data(),
             b.data(), 1.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, ds::gemm_flops(m, n, k));
}
BENCHMARK(BM_GemmTransposed);

// ---------------------------------- im2col ----------------------------------

void BM_Im2col(benchmark::State& state) {
  const ds::ConvGeom g{3, 32, 32, 3, 1, 1};
  ds::Rng rng(1);
  std::vector<float> img(g.channels * g.height * g.width);
  std::vector<float> col(g.col_rows() * g.col_cols());
  fill(img, rng);
  for (auto _ : state) {
    ds::im2col(g, img.data(), col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_Col2im(benchmark::State& state) {
  const ds::ConvGeom g{3, 32, 32, 3, 1, 1};
  ds::Rng rng(1);
  std::vector<float> img(g.channels * g.height * g.width, 0.0f);
  std::vector<float> col(g.col_rows() * g.col_cols());
  fill(col, rng);
  for (auto _ : state) {
    ds::col2im(g, col.data(), img.data());
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_Col2im);

// ---------------------------------- Layers ----------------------------------

// Conv layer benches: state.range(0) is the batch size, so the per-image
// and batched-lowering regimes share one harness. in 3 → out 16 channels on
// 32×32 inputs (the AlexNet-s stem shape), forward = 1/3 of flops_per_sample.
void BM_ConvForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  ds::Conv2D conv(3, 16, 3, 1, 1);
  std::vector<float> params(conv.param_count()), grads(conv.param_count());
  conv.bind(params, grads);
  ds::Rng rng(2);
  conv.init_params(rng);
  ds::Tensor x({batch, 3, 32, 32});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  ds::Tensor y;
  for (auto _ : state) {
    conv.forward(x, y, false);
    benchmark::DoNotOptimize(y.data());
  }
  set_gflops(state, conv.flops_per_sample(x.shape()) / 3.0 *
                        static_cast<double>(batch));
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  ds::Conv2D conv(3, 16, 3, 1, 1);
  std::vector<float> params(conv.param_count()), grads(conv.param_count());
  conv.bind(params, grads);
  ds::Rng rng(2);
  conv.init_params(rng);
  ds::Tensor x({batch, 3, 32, 32});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  ds::Tensor y, dx;
  conv.forward(x, y, false);
  ds::Tensor dy(y.shape());
  dy.fill(0.01f);
  for (auto _ : state) {
    conv.backward(x, y, dy, dx);
    benchmark::DoNotOptimize(dx.data());
  }
  set_gflops(state, conv.flops_per_sample(x.shape()) * 2.0 / 3.0 *
                        static_cast<double>(batch));
}
BENCHMARK(BM_ConvBackward)->Arg(8)->Arg(32);

void BM_ConvForwardDeep(benchmark::State& state) {
  // A mid-network shape: 32 → 64 channels on 16×16, batch 32 — the regime
  // where the batched lowering's single fat GEMM pays off most.
  const std::size_t batch = 32;
  ds::Conv2D conv(32, 64, 3, 1, 1);
  std::vector<float> params(conv.param_count()), grads(conv.param_count());
  conv.bind(params, grads);
  ds::Rng rng(2);
  conv.init_params(rng);
  ds::Tensor x({batch, 32, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  ds::Tensor y;
  for (auto _ : state) {
    conv.forward(x, y, false);
    benchmark::DoNotOptimize(y.data());
  }
  set_gflops(state, conv.flops_per_sample(x.shape()) / 3.0 *
                        static_cast<double>(batch));
}
BENCHMARK(BM_ConvForwardDeep);

// ------------------------- Convolution algorithms ---------------------------

// Forward throughput per ConvAlgo on an AlexNet-class 3×3/s1/p1 layer
// (32 → 32 channels on 16×16, batch 32 — the alexnet_s conv3 shape, which
// every mid-network conv in the zoo resembles). GFLOP/s counts the
// direct-convolution flop budget for every algorithm so the numbers are
// comparable (Winograd's multiply saving shows up as a higher rate, not a
// smaller numerator). The "speedup_vs_im2col" counter re-times the im2col
// path on the same tensors in-process and reports the ratio — load- and
// machine-stable in a way raw rates are not, so the CI gate can hold the
// ≥1.3× claim against it with a tight tolerance.
void conv3x3_algo_bench(benchmark::State& state, ds::ConvAlgo algo) {
  const std::size_t batch = 32, hw = 16;
  const auto in_c = static_cast<std::size_t>(state.range(0));
  const std::size_t out_c = in_c;
  ds::Rng rng(2);
  ds::Tensor x({batch, in_c, hw, hw});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  const auto make_conv = [&](ds::ConvAlgo a, std::vector<float>& params,
                             std::vector<float>& grads) {
    auto conv = std::make_unique<ds::Conv2D>(in_c, out_c, 3, 1, 1, a);
    params.resize(conv->param_count());
    grads.resize(conv->param_count());
    conv->bind(params, grads);
    ds::Rng init(2);
    conv->init_params(init);
    return conv;
  };
  std::vector<float> params, grads;
  auto conv = make_conv(algo, params, grads);
  ds::Tensor y;
  for (auto _ : state) {
    conv->forward(x, y, false);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = conv->flops_per_sample(x.shape()) / 3.0 *
                       static_cast<double>(batch);
  set_gflops(state, flops);

  // Best-of-3 windows of 10 calls each: the steady-state time, insulated
  // from first-touch page faults on the freshly allocated workspaces.
  const auto time_forward = [&](ds::ConvAlgo a) {
    std::vector<float> p, g;
    auto c = make_conv(a, p, g);
    ds::Tensor out;
    for (int warm = 0; warm < 3; ++warm) c->forward(x, out, false);
    double best = 0.0;
    for (int window = 0; window < 3; ++window) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < 10; ++rep) c->forward(x, out, false);
      const double t =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (window == 0 || t < best) best = t;
    }
    benchmark::DoNotOptimize(out.data());
    return best;
  };
  state.counters["speedup_vs_im2col"] =
      time_forward(ds::ConvAlgo::kIm2col) / time_forward(algo);
}
BENCHMARK_CAPTURE(conv3x3_algo_bench, im2col, ds::ConvAlgo::kIm2col)
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(conv3x3_algo_bench, direct, ds::ConvAlgo::kDirect)
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(conv3x3_algo_bench, winograd, ds::ConvAlgo::kWinograd)
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(conv3x3_algo_bench, int8, ds::ConvAlgo::kInt8)
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(conv3x3_algo_bench, auto_pick, ds::ConvAlgo::kAuto)
    ->Arg(32)->Arg(64);

// ------------------------------- Update rules --------------------------------

void BM_EasgdWorkerStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Rng rng(3);
  std::vector<float> w(n), g(n), center(n);
  fill(w, rng);
  fill(g, rng);
  fill(center, rng);
  for (auto _ : state) {
    ds::easgd_worker_step(w, g, center, 0.01f, 0.01f);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 3 * sizeof(float));
}
BENCHMARK(BM_EasgdWorkerStep)->Arg(14970)->Arg(1 << 20);

void BM_MeasgdWorkerStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Rng rng(3);
  std::vector<float> w(n), v(n), g(n), center(n);
  fill(w, rng);
  fill(g, rng);
  fill(center, rng);
  for (auto _ : state) {
    ds::measgd_worker_step(w, v, g, center, 0.01f, 0.9f, 0.01f);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_MeasgdWorkerStep)->Arg(14970);

void BM_EasgdCenterStepSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Rng rng(3);
  std::vector<float> center(n), sum_w(n);
  fill(center, rng);
  fill(sum_w, rng);
  for (auto _ : state) {
    ds::easgd_center_step_sum(center, sum_w, 4, 0.01f, 0.01f);
    benchmark::DoNotOptimize(center.data());
  }
}
BENCHMARK(BM_EasgdCenterStepSum)->Arg(14970);

// ------------------------------ Whole networks -------------------------------

void BM_LenetForwardBackward(benchmark::State& state) {
  ds::Rng rng(7);
  auto net = ds::make_lenet_s(rng);
  ds::Tensor x({32, 1, 28, 28});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<std::int32_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    net->zero_grads();
    const ds::LossResult r = net->forward_backward(x, labels);
    benchmark::DoNotOptimize(r.loss);
  }
  state.counters["model GFLOP/s"] = benchmark::Counter(
      net->flops_per_sample() * 32.0 *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LenetForwardBackward);

void BM_AlexnetForwardBackward(benchmark::State& state) {
  ds::Rng rng(7);
  auto net = ds::make_alexnet_s(rng);
  ds::Tensor x({8, 3, 32, 32});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<std::int32_t> labels(8);
  for (std::size_t i = 0; i < 8; ++i) labels[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    net->zero_grads();
    const ds::LossResult r = net->forward_backward(x, labels);
    benchmark::DoNotOptimize(r.loss);
  }
}
BENCHMARK(BM_AlexnetForwardBackward);

void BM_GooglenetForwardBackward(benchmark::State& state) {
  // Inception-block step time: the other model family whose 3×3 branches
  // ride the conv dispatch (the 1×1/5×5 stages stay on im2col).
  ds::Rng rng(7);
  auto net = ds::make_googlenet_s(rng);
  ds::Tensor x({8, 3, 32, 32});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<std::int32_t> labels(8);
  for (std::size_t i = 0; i < 8; ++i) labels[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    net->zero_grads();
    const ds::LossResult r = net->forward_backward(x, labels);
    benchmark::DoNotOptimize(r.loss);
  }
}
BENCHMARK(BM_GooglenetForwardBackward);

}  // namespace

#include "micro_bench_main.hpp"
DS_MICRO_BENCH_MAIN("micro_kernels")
