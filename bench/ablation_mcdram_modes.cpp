// Ablation — MCDRAM operating modes (paper Figure 2 and §2.1).
//
// Effective streaming bandwidth of a working set under cache / flat /
// hybrid MCDRAM configurations, swept across working-set sizes. The
// qualitative story the paper's Figure 2 tells: flat mode wins when
// software places data explicitly and it fits (the §6.2 partitioning
// strategy relies on this); cache mode degrades gracefully without code
// changes; hybrid sits between.
#include <cstdio>

#include "simhw/knl_chip.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::Reporter reporter("ablation_mcdram_modes");
  ds::bench::print_header("Ablation: MCDRAM modes (Figure 2)");

  const ds::KnlChip chip;
  std::printf("chip: %.0f GB MCDRAM @ %.0f GB/s, DDR @ %.0f GB/s\n\n",
              chip.config().mcdram_bytes / (1024.0 * 1024 * 1024),
              chip.config().mcdram_bandwidth / 1e9,
              chip.config().ddr_bandwidth / 1e9);

  std::printf("%16s %12s %12s %12s\n", "working set", "flat", "cache",
              "hybrid");
  std::printf("%16s %12s %12s %12s\n", "(GB)", "(GB/s)", "(GB/s)", "(GB/s)");
  for (const double gb : {1.0, 4.0, 8.0, 16.0, 24.0, 32.0, 64.0, 128.0, 256.0}) {
    const double ws = gb * 1024.0 * 1024.0 * 1024.0;
    std::printf("%16.0f %12.0f %12.0f %12.0f\n", gb,
                chip.mode_bandwidth(ds::McdramMode::kFlat, ws) / 1e9,
                chip.mode_bandwidth(ds::McdramMode::kCache, ws) / 1e9,
                chip.mode_bandwidth(ds::McdramMode::kHybrid, ws) / 1e9);
    const std::string prefix = "ws_" + std::to_string(static_cast<int>(gb)) +
                               "gb.";
    reporter.metric(prefix + "flat_gbs",
                    chip.mode_bandwidth(ds::McdramMode::kFlat, ws) / 1e9,
                    ds::bench::Better::kHigher, "GB/s");
    reporter.metric(prefix + "cache_gbs",
                    chip.mode_bandwidth(ds::McdramMode::kCache, ws) / 1e9,
                    ds::bench::Better::kHigher, "GB/s");
  }

  std::printf("\nCluster-mode locality anchors (2.1), as fractions of peak "
              "MCDRAM bandwidth\nreachable by pinned partitions:\n");
  for (const auto mode :
       {ds::KnlClusterMode::kAll2All, ds::KnlClusterMode::kQuadrant,
        ds::KnlClusterMode::kSnc4}) {
    std::printf("  %-12s %.2f\n", ds::knl_cluster_mode_name(mode),
                chip.cluster_mode_locality(mode));
  }
  std::printf(
      "\nThe 6.2 divide-and-conquer assumes flat mode + SNC-style pinning: "
      "P weight/data\ncopies placed in MCDRAM explicitly — the best row "
      "above, until capacity runs out\n(Figure 12's P=32 cliff).\n");
  args.describe(reporter);
  return args.finish(reporter);
}
