// Ablation — the elastic coupling ρ.
//
// Equations (1)/(2) couple every worker to the center with force η·ρ. The
// EASGD paper's moving-rate rule puts η·ρ ≈ 0.9/P; this sweep shows why the
// setting matters in both directions: too small and the center barely
// tracks the workers (slow Figure-6-style convergence of the *evaluated*
// center weights); too large and the elastic force dominates the gradient
// signal (workers are pinned to the center and exploration dies).
#include <cstdio>

#include "core/sync_algorithms.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const auto args = ds::bench::BenchArgs::parse(argc, argv);
  ds::bench::print_header("Ablation: elastic coupling rho (Sync EASGD3)");
  std::vector<ds::RunResult> runs;

  ds::bench::MnistLenetSetup base;
  const float rule = 0.9f / (static_cast<float>(base.ctx.config.workers) *
                             base.ctx.config.learning_rate);
  std::printf("moving-rate rule: eta*rho = 0.9/P  =>  rho = %.4f\n\n", rule);
  std::printf("%12s %14s %12s %14s\n", "rho", "eta*rho*P", "final acc",
              "t to 0.90 (s)");

  for (const float factor : {0.01f, 0.1f, 0.5f, 1.0f, 1.05f, 1.15f}) {
    ds::bench::MnistLenetSetup setup;
    setup.ctx.config.rho = rule * factor;
    setup.ctx.config.iterations = 250;
    args.apply(setup.ctx.config);
    ds::RunResult r =
        run_sync_easgd(setup.ctx, setup.hw, ds::SyncEasgdVariant::kEasgd3);
    const auto t = r.time_to_accuracy(0.90);
    const float pull = setup.ctx.config.rho *
                       setup.ctx.config.learning_rate *
                       static_cast<float>(setup.ctx.config.workers);
    if (t) {
      std::printf("%12.4f %14.3f %12.3f %14.2f\n", setup.ctx.config.rho,
                  pull, r.final_accuracy, *t);
    } else {
      std::printf("%12.4f %14.3f %12.3f %14s\n", setup.ctx.config.rho, pull,
                  r.final_accuracy, "never");
    }
    char tag[32];
    std::snprintf(tag, sizeof(tag), "rho_%.2fx", factor);
    r.method += std::string(" ") + tag;
    runs.push_back(std::move(r));
  }
  std::printf(
      "\nExpected shape: tiny rho leaves the center stale (low accuracy); "
      "the rule's\nneighbourhood is best; eta*rho*P beyond 1 destabilises "
      "Equation (2).\n");

  ds::bench::Reporter reporter("ablation_rho");
  args.describe(reporter);
  return ds::bench::report_runs(args, reporter, runs);
}
