// Shared harness pieces for the table/figure reproduction binaries: canonical
// experiment setups (datasets, model factories, hardware models with the
// calibrated defaults) and trace printing.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/methods.hpp"
#include "core/run_result.hpp"
#include "data/dataset.hpp"
#include "nn/models.hpp"
#include "obs/analysis/bench_report.hpp"
#include "simhw/gpu_system.hpp"

namespace ds::bench {

/// Flags every bench binary accepts:
///   --seed N      override TrainConfig::seed / the bench's RNG seed
///   --iters N     override TrainConfig::iterations
///   --json PATH   write the structured BENCH document to PATH on exit
struct BenchArgs {
  std::uint64_t seed = 0;
  std::size_t iters = 0;
  bool has_seed = false;
  bool has_iters = false;
  std::string json_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = std::strtoull(argv[++i], nullptr, 10);
        a.has_seed = true;
      } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
        a.iters = std::strtoull(argv[++i], nullptr, 10);
        a.has_iters = true;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        a.json_path = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: %s [--seed N] [--iters N] [--json PATH]\n",
                     argc > 0 ? argv[0] : "bench");
        std::exit(2);
      }
    }
    return a;
  }

  /// Apply the overrides to a run configuration (no-ops when not given).
  void apply(TrainConfig& config) const {
    if (has_seed) config.seed = seed;
    if (has_iters) config.iterations = iters;
  }

  /// Stamp seed + overrides into the reporter's header.
  void describe(Reporter& reporter) const {
    if (has_seed) reporter.set_seed(seed);
    if (has_iters) reporter.set_setup("iters_override",
                                      static_cast<double>(iters));
  }

  /// Write the document if --json was given; always returns 0 so mains can
  /// `return args.finish(reporter);`.
  int finish(const Reporter& reporter) const {
    if (!json_path.empty()) {
      reporter.write_file(json_path);
      std::printf("bench json: %s\n", json_path.c_str());
    }
    return 0;
  }
};

/// MNIST-like + LeNet-S on the 4-GPU node — the setup of Figures 6/8 and
/// Table 3 ("The test is for Mnist dataset on 4 GPUs").
struct MnistLenetSetup {
  TrainTest data;
  AlgoContext ctx;
  GpuSystem hw;

  explicit MnistLenetSetup(std::size_t train_count = 2048,
                           std::size_t test_count = 512)
      : data(mnist_like(42, train_count, test_count)),
        hw(GpuSystemConfig{}, paper_lenet(), 28.0 * 28.0 * 4.0) {
    ctx.factory = [] {
      Rng rng(7);
      return make_lenet_s(rng);
    };
    ctx.train = &data.train;
    ctx.test = &data.test;
    ctx.config.workers = 4;
    ctx.config.batch_size = 32;
    ctx.config.iterations = 300;
    // Aggressive enough that parameter-server SGD visibly suffers from
    // gradient staleness while elastic averaging stays stable — the regime
    // Figures 6/8 are about.
    ctx.config.learning_rate = 0.08f;
    ctx.config.momentum = 0.9f;
    // EASGD moving-rate rule (Zhang et al.): η·ρ ≈ 0.9/P per interaction.
    ctx.config.rho = 0.9f / (static_cast<float>(ctx.config.workers) *
                             ctx.config.learning_rate);
    ctx.config.eval_every = 25;
    ctx.config.eval_samples = 256;
  }
};

/// Cifar-like + AlexNet-S on the 4-GPU node (Figure 10 / Figure 12 inputs).
struct CifarAlexnetSetup {
  TrainTest data;
  AlgoContext ctx;
  GpuSystem hw;

  explicit CifarAlexnetSetup(std::size_t train_count = 2048,
                             std::size_t test_count = 512,
                             PackMode pack = PackMode::kPacked)
      : data(cifar_like(42, train_count, test_count)),
        hw(GpuSystemConfig{}, paper_alexnet(), 3.0 * 32.0 * 32.0 * 4.0) {
    ctx.factory = [pack] {
      Rng rng(7);
      return make_alexnet_s(rng, pack);
    };
    ctx.train = &data.train;
    ctx.test = &data.test;
    ctx.config.workers = 4;
    ctx.config.batch_size = 16;
    ctx.config.iterations = 120;
    ctx.config.learning_rate = 0.03f;
    ctx.config.momentum = 0.9f;
    ctx.config.rho = 0.9f / (static_cast<float>(ctx.config.workers) *
                             ctx.config.learning_rate);
    ctx.config.eval_every = 20;
    ctx.config.eval_samples = 256;
  }
};

/// Methods that advance one batch per "iteration" (the round-robin baseline
/// and the asynchronous family) get the same total SAMPLE budget as the
/// synchronous methods, which advance `workers` batches per iteration.
inline void scale_budget_to_samples(AlgoContext& ctx, Method m) {
  if (m != Method::kSyncEasgd) {
    ctx.config.iterations *= ctx.config.workers;
    ctx.config.eval_every *= ctx.config.workers;
  }
}

/// Print one run's accuracy trace as aligned columns.
inline void print_trace(const RunResult& r) {
  std::printf("%s (%zu iterations, %.2f virtual s)\n", r.method.c_str(),
              r.iterations, r.total_seconds);
  std::printf("  %9s %10s %9s %9s %12s\n", "iteration", "vtime(s)", "loss",
              "accuracy", "log10(err)");
  for (const TracePoint& p : r.trace) {
    const double err = std::max(1.0 - p.accuracy, 1e-4);
    std::printf("  %9zu %10.3f %9.4f %9.3f %12.3f\n", p.iteration, p.vtime,
                p.loss, p.accuracy, std::log10(err));
  }
}

/// Compact one-line-per-point CSV block (method,iter,vtime,loss,accuracy).
inline void print_csv(const std::vector<RunResult>& runs) {
  std::printf("csv:method,iteration,vtime_s,loss,accuracy\n");
  for (const RunResult& r : runs) {
    std::printf("%s", r.trace_csv().c_str());
  }
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

/// What crossed the (simulated) wire, one row per run. Every bench prints
/// this so wire-level regressions show up in plain stdout, not only in the
/// BENCH json.
inline void print_wire_table(const std::vector<RunResult>& runs) {
  std::printf("\nwire accounting\n");
  std::printf("  %-42s %12s %16s %12s  %s\n", "method", "messages", "bytes",
              "retransmits", "status");
  for (const RunResult& r : runs) {
    std::printf("  %-42s %12llu %16llu %12llu  %s\n", r.method.c_str(),
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<unsigned long long>(r.bytes_sent),
                static_cast<unsigned long long>(r.retransmits),
                r.fault_summary().c_str());
  }
}

/// The common bench epilogue: wire table on stdout, runs into the reporter,
/// optional --json dump. Returns the process exit code.
inline int report_runs(const BenchArgs& args, Reporter& reporter,
                       const std::vector<RunResult>& runs) {
  print_wire_table(runs);
  for (const RunResult& r : runs) reporter.add_run(r);
  return args.finish(reporter);
}

}  // namespace ds::bench
