// Shared harness pieces for the table/figure reproduction binaries: canonical
// experiment setups (datasets, model factories, hardware models with the
// calibrated defaults) and trace printing.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/methods.hpp"
#include "core/run_result.hpp"
#include "data/dataset.hpp"
#include "nn/models.hpp"
#include "simhw/gpu_system.hpp"

namespace ds::bench {

/// MNIST-like + LeNet-S on the 4-GPU node — the setup of Figures 6/8 and
/// Table 3 ("The test is for Mnist dataset on 4 GPUs").
struct MnistLenetSetup {
  TrainTest data;
  AlgoContext ctx;
  GpuSystem hw;

  explicit MnistLenetSetup(std::size_t train_count = 2048,
                           std::size_t test_count = 512)
      : data(mnist_like(42, train_count, test_count)),
        hw(GpuSystemConfig{}, paper_lenet(), 28.0 * 28.0 * 4.0) {
    ctx.factory = [] {
      Rng rng(7);
      return make_lenet_s(rng);
    };
    ctx.train = &data.train;
    ctx.test = &data.test;
    ctx.config.workers = 4;
    ctx.config.batch_size = 32;
    ctx.config.iterations = 300;
    // Aggressive enough that parameter-server SGD visibly suffers from
    // gradient staleness while elastic averaging stays stable — the regime
    // Figures 6/8 are about.
    ctx.config.learning_rate = 0.08f;
    ctx.config.momentum = 0.9f;
    // EASGD moving-rate rule (Zhang et al.): η·ρ ≈ 0.9/P per interaction.
    ctx.config.rho = 0.9f / (static_cast<float>(ctx.config.workers) *
                             ctx.config.learning_rate);
    ctx.config.eval_every = 25;
    ctx.config.eval_samples = 256;
  }
};

/// Cifar-like + AlexNet-S on the 4-GPU node (Figure 10 / Figure 12 inputs).
struct CifarAlexnetSetup {
  TrainTest data;
  AlgoContext ctx;
  GpuSystem hw;

  explicit CifarAlexnetSetup(std::size_t train_count = 2048,
                             std::size_t test_count = 512,
                             PackMode pack = PackMode::kPacked)
      : data(cifar_like(42, train_count, test_count)),
        hw(GpuSystemConfig{}, paper_alexnet(), 3.0 * 32.0 * 32.0 * 4.0) {
    ctx.factory = [pack] {
      Rng rng(7);
      return make_alexnet_s(rng, pack);
    };
    ctx.train = &data.train;
    ctx.test = &data.test;
    ctx.config.workers = 4;
    ctx.config.batch_size = 16;
    ctx.config.iterations = 120;
    ctx.config.learning_rate = 0.03f;
    ctx.config.momentum = 0.9f;
    ctx.config.rho = 0.9f / (static_cast<float>(ctx.config.workers) *
                             ctx.config.learning_rate);
    ctx.config.eval_every = 20;
    ctx.config.eval_samples = 256;
  }
};

/// Methods that advance one batch per "iteration" (the round-robin baseline
/// and the asynchronous family) get the same total SAMPLE budget as the
/// synchronous methods, which advance `workers` batches per iteration.
inline void scale_budget_to_samples(AlgoContext& ctx, Method m) {
  if (m != Method::kSyncEasgd) {
    ctx.config.iterations *= ctx.config.workers;
    ctx.config.eval_every *= ctx.config.workers;
  }
}

/// Print one run's accuracy trace as aligned columns.
inline void print_trace(const RunResult& r) {
  std::printf("%s (%zu iterations, %.2f virtual s)\n", r.method.c_str(),
              r.iterations, r.total_seconds);
  std::printf("  %9s %10s %9s %9s %12s\n", "iteration", "vtime(s)", "loss",
              "accuracy", "log10(err)");
  for (const TracePoint& p : r.trace) {
    const double err = std::max(1.0 - p.accuracy, 1e-4);
    std::printf("  %9zu %10.3f %9.4f %9.3f %12.3f\n", p.iteration, p.vtime,
                p.loss, p.accuracy, std::log10(err));
  }
}

/// Compact one-line-per-point CSV block (method,iter,vtime,loss,accuracy).
inline void print_csv(const std::vector<RunResult>& runs) {
  std::printf("csv:method,iteration,vtime_s,loss,accuracy\n");
  for (const RunResult& r : runs) {
    std::printf("%s", r.trace_csv().c_str());
  }
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

}  // namespace ds::bench
